// Command tenantbench runs named multi-tenant workload scenarios on the
// simulated interconnects and prints a per-tenant breakdown: aggregate
// throughput of virtual time, latency percentiles per tenant, fairness,
// and wire accounting. It is the CLI face of the communicator subsystem
// (internal/comm) behind nicbarrier.MeasureWorkload.
//
// Examples:
//
//	tenantbench -list
//	tenantbench -scenario saturate-64
//	tenantbench -all -ops 50
//	tenantbench -scenario open-loop-burst -tenants 16 -seed 7
//	tenantbench -scenario saturate-64 -partitions 4
//
// Traces written with -trace can be validated and summarized with
// cmd/tracecheck (go run ./cmd/tracecheck <file>).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nicbarrier"
)

// scenario is one named workload shape; cluster size and tenant count
// are defaults the flags can override.
type scenario struct {
	name string
	desc string
	cfg  nicbarrier.Config
	spec nicbarrier.WorkloadSpec
	note string
}

func scenarios() []scenario {
	xp := func(nodes int) nicbarrier.Config {
		return nicbarrier.Config{
			Interconnect: nicbarrier.MyrinetLANaiXP,
			Nodes:        nodes,
			Scheme:       nicbarrier.NICCollective,
			Algorithm:    nicbarrier.Dissemination,
			Seed:         1,
		}
	}
	return []scenario{
		{
			name: "saturate-64",
			desc: "16 tenants carve a 64-node cluster, back-to-back barriers",
			cfg:  xp(64),
			spec: nicbarrier.WorkloadSpec{Tenants: 16, OpsPerTenant: 40},
			note: "every tenant drives its group flat out; aggregate ops/sec is what\n" +
				"the per-group NIC queues buy over serializing on one communicator",
		},
		{
			name: "mixed-collectives",
			desc: "2:1:1 barrier:broadcast:allreduce mix, closed loop with think time",
			cfg:  xp(32),
			spec: nicbarrier.WorkloadSpec{
				Tenants: 8, OpsPerTenant: 40,
				BarrierWeight: 2, BroadcastWeight: 1, AllreduceWeight: 1,
				Arrival: nicbarrier.ClosedLoop, MeanGapMicros: 10,
			},
			note: "allreduce tenants self-check every iteration's result, so cross-tenant\n" +
				"contamination of NIC group state cannot pass silently",
		},
		{
			name: "open-loop-burst",
			desc: "open-loop Poisson arrivals faster than service: queueing shows in p99",
			cfg:  xp(32),
			spec: nicbarrier.WorkloadSpec{
				Tenants: 8, OpsPerTenant: 40,
				Arrival: nicbarrier.OpenLoop, MeanGapMicros: 4,
			},
			note: "latency is arrival-to-completion: ops that queue behind a busy group\n" +
				"pay the backlog, which is where open- and closed-loop results diverge",
		},
		{
			name: "overlap-crunch",
			desc: "random overlapping groups contend for shared nodes and links",
			cfg:  xp(16),
			spec: nicbarrier.WorkloadSpec{
				Tenants: 6, OpsPerTenant: 40,
				GroupSizeMin: 4, GroupSizeMax: 8, Overlap: true,
			},
			note: "co-resident groups serialize on the one NIC firmware processor;\n" +
				"fairness below 1.0 is contention, not scheduling bias",
		},
		{
			name: "quadrics-tenants",
			desc: "concurrent chained-RDMA barrier groups on a QsNet fat tree",
			cfg: nicbarrier.Config{
				Interconnect: nicbarrier.QuadricsElan3,
				Nodes:        32,
				Scheme:       nicbarrier.NICCollective,
				Seed:         1,
			},
			spec: nicbarrier.WorkloadSpec{Tenants: 8, OpsPerTenant: 40},
			note: "each tenant's descriptor chain lives in its own Elan slot; hardware\n" +
				"reliability means zero drops whatever the contention",
		},
	}
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tenantbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listOnly := fs.Bool("list", false, "list scenarios and exit")
	name := fs.String("scenario", "", "scenario to run (see -list)")
	all := fs.Bool("all", false, "run every scenario")
	tenants := fs.Int("tenants", 0, "override the scenario's tenant count")
	ops := fs.Int("ops", 0, "override operations per tenant")
	seed := fs.Uint64("seed", 0, "override the cluster seed (0: scenario default)")
	partitions := fs.Int("partitions", 0,
		"run the workload on this many parallel replica shards (0 or 1: single partition)")
	trace := fs.String("trace", "",
		"write a Chrome trace-event JSON of the run to this file and print per-op latency decomposition\n"+
			"(validate the output with: go run ./cmd/tracecheck <file>)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	scens := scenarios()
	if *listOnly {
		for _, s := range scens {
			fmt.Fprintf(stdout, "  %-18s %s\n", s.name, s.desc)
		}
		return 0
	}
	var picked []scenario
	switch {
	case *all:
		picked = scens
	case *name != "":
		for _, s := range scens {
			if s.name == *name {
				picked = append(picked, s)
			}
		}
		if len(picked) == 0 {
			fmt.Fprintf(stderr, "tenantbench: unknown -scenario %q (try -list)\n", *name)
			return 1
		}
	default:
		fmt.Fprintln(stderr, "tenantbench: pick -scenario <name>, -all, or -list")
		return 1
	}

	var tr *nicbarrier.Trace
	if *trace != "" {
		tr = nicbarrier.NewTrace()
	}
	for _, s := range picked {
		if *tenants > 0 {
			s.spec.Tenants = *tenants
		}
		if *ops > 0 {
			s.spec.OpsPerTenant = *ops
		}
		if *seed != 0 {
			s.cfg.Seed = *seed
		}
		s.cfg.Partitions = *partitions
		s.cfg.Trace = tr
		res, err := nicbarrier.MeasureWorkload(s.cfg, s.spec)
		if err != nil {
			fmt.Fprintf(stderr, "tenantbench: %s: %v\n", s.name, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s — %s\n", s.name, s.desc)
		fmt.Fprintf(stdout, "%s on %d nodes, %d tenants x %d ops\n",
			s.cfg.Interconnect, s.cfg.Nodes, s.spec.Tenants, s.spec.OpsPerTenant)
		fmt.Fprintf(stdout, "  aggregate  %10.1f ops/s over %.1fus makespan, fairness %.3f\n",
			res.AggregateOpsPerSec, res.MakespanMicros, res.Fairness)
		fmt.Fprintf(stdout, "  wire       %d packets, %d dropped\n", res.Packets, res.DroppedPackets)
		fmt.Fprintf(stdout, "  %6s %-10s %5s %6s %9s %9s %9s %11s\n",
			"tenant", "op", "size", "ops", "p50(us)", "p99(us)", "max(us)", "ops/s")
		for _, tr := range res.Tenants {
			fmt.Fprintf(stdout, "  %6d %-10s %5d %6d %9.2f %9.2f %9.2f %11.1f\n",
				tr.Tenant, tr.Operation, tr.GroupSize, tr.Ops,
				tr.P50Micros, tr.P99Micros, tr.MaxMicros, tr.OpsPerSec)
		}
		if tr != nil {
			printDecomp(stdout, res.Decomp)
		}
		fmt.Fprintf(stdout, "note: %s\n\n", s.note)
	}
	if tr != nil {
		if err := tr.WriteChromeFile(*trace); err != nil {
			fmt.Fprintf(stderr, "tenantbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace written to %s\n", *trace)
	}
	return 0
}

// printDecomp renders the per-op latency decomposition: where each op
// type's attributed time went — queue wait, wire transfer, NIC
// processing — with shares of the attributed total.
func printDecomp(w io.Writer, rows []nicbarrier.OpDecomposition) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "  %-10s %8s %12s %12s %12s %7s %7s %7s\n",
		"decomp", "ops", "queue(us)", "wire(us)", "nic(us)", "queue%", "wire%", "nic%")
	for _, d := range rows {
		fmt.Fprintf(w, "  %-10s %8d %12.2f %12.2f %12.2f %6.1f%% %6.1f%% %6.1f%%\n",
			d.Operation, d.Ops, d.QueueMicros, d.WireMicros, d.NICMicros,
			100*d.QueueShare, 100*d.WireShare, 100*d.NICShare)
	}
}
