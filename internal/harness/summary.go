package harness

import (
	"fmt"
	"math"
	"strings"

	"nicbarrier/internal/barrier"
	"nicbarrier/internal/elan"
	"nicbarrier/internal/hwprofile"
	"nicbarrier/internal/model"
	"nicbarrier/internal/myrinet"
)

// Row is one paper-vs-measured comparison. Indentation in Metric
// (leading spaces) means "derived from the row above" — it both groups
// the rendered table visually and nests the exported metric name under
// the parent row in Table.ToPoints. Rows that are independent absolute
// measurements must not be indented, or their report metric would claim
// a false parent.
type Row struct {
	Metric   string
	Unit     string
	Paper    float64
	Measured float64
}

// Delta reports the relative deviation from the paper's value.
func (r Row) Delta() float64 {
	if r.Paper == 0 {
		return math.NaN()
	}
	return (r.Measured - r.Paper) / r.Paper
}

// Table is a rendered comparison table (the Section 8 headline numbers).
type Table struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
}

// Render produces an aligned text table with deviations.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-52s %8s %9s %7s\n", "metric", "paper", "measured", "delta")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-52s %6.2f%s %7.2f%s %+6.1f%%\n",
			r.Metric, r.Paper, r.Unit, r.Measured, r.Unit, r.Delta()*100)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Summary regenerates every headline number from the paper's Section 8
// prose and abstract, next to this reproduction's measurements.
func Summary(cfg Config) Table {
	xp := hwprofile.LANaiXPCluster()
	l9 := hwprofile.LANai91Cluster()

	quadNIC := MeasureElan(cfg, 8, 8, elan.SchemeChained, barrier.Dissemination)
	quadGsync := MeasureElan(cfg, 8, 8, elan.SchemeGsync, barrier.GatherBroadcast)
	quadHW := MeasureElan(cfg, 8, 8, elan.SchemeHW, barrier.Dissemination)

	xpNIC := MeasureMyrinet(cfg, xp, 8, 8, myrinet.SchemeCollective, barrier.Dissemination)
	xpHost := MeasureMyrinet(cfg, xp, 8, 8, myrinet.SchemeHost, barrier.Dissemination)

	l9NIC := MeasureMyrinet(cfg, l9, 16, 16, myrinet.SchemeCollective, barrier.Dissemination)
	l9Host := MeasureMyrinet(cfg, l9, 16, 16, myrinet.SchemeHost, barrier.Dissemination)

	// Fit the scalability models from measured sweeps and extrapolate.
	fitOver := func(measure Measure) model.Model {
		ns := powersOfTwo(2, 1024)
		xs := make([]int, len(ns))
		ys := make([]float64, len(ns))
		for i, n := range ns {
			xs[i], ys[i] = n, measure(n)
		}
		m, err := model.Fit(xs, ys)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		return m
	}
	quadModel := fitOver(func(n int) float64 {
		return MeasureElan(cfg, n, n, elan.SchemeChained, barrier.Dissemination)
	})
	myriModel := fitOver(func(n int) float64 {
		return MeasureMyrinet(cfg, xp, n, n, myrinet.SchemeCollective, barrier.Dissemination)
	})

	return Table{
		ID:    "summary",
		Title: "Section 8 headline numbers, paper vs this reproduction",
		Rows: []Row{
			{"Quadrics NIC-based barrier, 8 nodes", "us", 5.60, quadNIC},
			{"  improvement over elan_gsync tree barrier", "x", 2.48, quadGsync / quadNIC},
			// Not indented: an independent absolute measurement of a
			// different scheme, not a quantity derived from the row above
			// (indentation nests metric names in ToPoints).
			{"elan_hgsync hardware barrier, 8 nodes", "us", 4.20, quadHW},
			{"Myrinet LANai-XP NIC-based barrier, 8 nodes", "us", 14.20, xpNIC},
			{"  improvement over host-based barrier", "x", 2.64, xpHost / xpNIC},
			{"Myrinet LANai 9.1 NIC-based barrier, 16 nodes", "us", 25.72, l9NIC},
			{"  improvement over host-based barrier", "x", 3.38, l9Host / l9NIC},
			{"Model: Quadrics Ttrig", "us", 2.32, quadModel.Ttrig},
			{"Model: Quadrics barrier at 1024 nodes", "us", 22.13, quadModel.Predict(1024)},
			{"Model: Myrinet Ttrig", "us", 3.50, myriModel.Ttrig},
			{"Model: Myrinet barrier at 1024 nodes", "us", 38.94, myriModel.Predict(1024)},
		},
		Notes: []string{
			"measured on the simulated substrates described in DESIGN.md",
			"fitted models: quadrics " + quadModel.String() + "; myrinet " + myriModel.String(),
		},
	}
}
