// Package core implements the paper's primary contribution: the NIC-based
// collective message passing protocol. It contains the pieces the paper
// identifies as the collective replacements for point-to-point processing:
//
//   - Group tables with dedicated per-group queues (queuing done
//     collectively — Section 3 "Queuing" and Section 6.1);
//   - a single send record per collective operation holding a bit vector
//     over peer messages (bookkeeping done collectively — Section 3
//     "Bookkeeping" and Section 6.3);
//   - the operation state machine that advances a barrier.Schedule as
//     notifications arrive, buffering one barrier ahead (the consecutive-
//     barrier case);
//   - receiver-driven retransmission support: Missing() lists the peers
//     to NACK, HasSent() answers whether a NACK can be served (error
//     control done collectively — Section 3 "Flow/Error Control" and
//     Section 6.3).
//
// The package is engine-agnostic and cost-free: the Myrinet MCP model
// (internal/myrinet) and the Quadrics chained-RDMA model (internal/elan)
// both drive these state machines, charging their own processing costs.
package core

import "fmt"

// BitVector is a fixed-capacity bit set. The paper replaces per-packet
// send records with "a bit vector to record whether all the messages for
// a barrier operation are completed or not"; this is that vector.
type BitVector struct {
	bits []uint64
	n    int
	set  int
}

// NewBitVector returns a vector of n cleared bits.
func NewBitVector(n int) *BitVector {
	if n < 0 {
		panic(fmt.Sprintf("core: bit vector size %d", n))
	}
	return &BitVector{bits: make([]uint64, (n+63)/64), n: n}
}

// Len reports the vector capacity.
func (v *BitVector) Len() int { return v.n }

// Count reports how many bits are set.
func (v *BitVector) Count() int { return v.set }

func (v *BitVector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("core: bit %d outside [0,%d)", i, v.n))
	}
}

// Set sets bit i, reporting whether it was previously clear.
func (v *BitVector) Set(i int) bool {
	v.check(i)
	w, m := i/64, uint64(1)<<(i%64)
	if v.bits[w]&m != 0 {
		return false
	}
	v.bits[w] |= m
	v.set++
	return true
}

// Get reports bit i.
func (v *BitVector) Get(i int) bool {
	v.check(i)
	return v.bits[i/64]&(uint64(1)<<(i%64)) != 0
}

// Full reports whether every bit is set.
func (v *BitVector) Full() bool { return v.set == v.n }

// Clear resets every bit.
func (v *BitVector) Clear() {
	for i := range v.bits {
		v.bits[i] = 0
	}
	v.set = 0
}

// Missing returns the indices of clear bits, in ascending order.
func (v *BitVector) Missing() []int {
	if v.Full() {
		return nil
	}
	out := make([]int, 0, v.n-v.set)
	for i := 0; i < v.n; i++ {
		if !v.Get(i) {
			out = append(out, i)
		}
	}
	return out
}
