package harness

import "testing"

// The crash curves must sit strictly above the clean curves — the
// survival bill is real — but stay bounded: one detection is roughly
// one deadline, so the gap must not balloon past a few deadlines.
func TestCrashRecoveryShape(t *testing.T) {
	fig := CrashRecovery(faultCfg())
	if len(fig.Series) != 4 {
		t.Fatalf("%d series", len(fig.Series))
	}
	bySeries := map[string]Series{}
	for _, s := range fig.Series {
		bySeries[s.Name] = s
	}
	for _, net := range []string{"Myrinet", "Quadrics"} {
		clean, crash := bySeries[net+"-clean"], bySeries[net+"-crash"]
		for i, p := range clean.Points {
			c := crash.Points[i]
			if c.N != p.N {
				t.Fatalf("%s: misaligned points %d vs %d", net, c.N, p.N)
			}
			gap := c.LatencyUS - p.LatencyUS
			if gap <= 0 {
				t.Errorf("%s n=%d: crash stream (%v us) not slower than clean (%v us)",
					net, p.N, c.LatencyUS, p.LatencyUS)
			}
			if gap > 5000 {
				t.Errorf("%s n=%d: recovery gap %v us not bounded by a few deadlines", net, p.N, gap)
			}
		}
	}
}

// On Quadrics nothing accelerates detection (no NACK traffic to stall),
// so the makespan must grow strictly with the deadline.
func TestRecoveryDeadlineSweepMonotoneOnQuadrics(t *testing.T) {
	fig := RecoveryDeadlineSweep(faultCfg())
	for _, s := range fig.Series {
		if s.Name != "Quadrics" {
			continue
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].LatencyUS <= s.Points[i-1].LatencyUS {
				t.Fatalf("Quadrics makespan not increasing with deadline: %v", s.Points)
			}
		}
	}
}

func TestRecoveryMeasurementsDeterministic(t *testing.T) {
	cfg := faultCfg()
	a := measureRecoveryMakespan(cfg, false, 8, 1000, true, 7)
	b := measureRecoveryMakespan(cfg, false, 8, 1000, true, 7)
	if a != b {
		t.Fatalf("recovery point not reproducible: %v vs %v", a, b)
	}
}
