package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGIntnUniformity(t *testing.T) {
	r := NewRNG(123)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	sum := 0.0
	const draws = 50000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

// Property: Perm always returns a permutation of [0, n).
func TestRNGPermProperty(t *testing.T) {
	r := NewRNG(5)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermShuffles(t *testing.T) {
	r := NewRNG(11)
	identity := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		p := r.Perm(8)
		isIdentity := true
		for j, v := range p {
			if v != j {
				isIdentity = false
				break
			}
		}
		if isIdentity {
			identity++
		}
	}
	// P(identity of 8) = 1/40320; 200 trials should essentially never hit it.
	if identity > 1 {
		t.Fatalf("identity permutation appeared %d/%d times", identity, trials)
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(3)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const draws = 40000
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / draws
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) hit fraction = %v", frac)
	}
}
