package myrinet

import (
	"fmt"

	"nicbarrier/internal/hwprofile"
	"nicbarrier/internal/netsim"
	"nicbarrier/internal/obs"
	"nicbarrier/internal/sim"
	"nicbarrier/internal/topo"
)

// Cluster is a set of Myrinet nodes on one network.
type Cluster struct {
	Eng   *sim.Engine
	Prof  hwprofile.MyrinetProfile
	Net   *netsim.Network
	Nodes []*Node
}

// NewCluster builds an n-node Myrinet cluster: a single 16-port crossbar
// when it fits (the paper's testbeds), otherwise a Clos network of
// 16-port switches (8 up / 8 down). loss may be nil.
func NewCluster(eng *sim.Engine, prof hwprofile.MyrinetProfile, n int, loss netsim.LossModel) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("myrinet: cluster size %d", n))
	}
	var t topo.Topology
	if n <= 16 {
		t = topo.NewCrossbar(n)
	} else {
		t = topo.MinFatTree(8, n)
	}
	net := netsim.New(eng, t, prof.Net, loss)
	cl := &Cluster{Eng: eng, Prof: prof, Net: net}
	for i := 0; i < n; i++ {
		cl.Nodes = append(cl.Nodes, NewNode(eng, i, &cl.Prof, net))
	}
	return cl
}

// SetTracer attaches an observability scope to the cluster: the network
// records packet lifecycle events on it and every NIC records firmware
// events (doorbells, NACKs, resends, installs) plus per-group NIC-time
// attribution. nil detaches. Tracing never alters the simulated
// timeline; with no tracer the cost is one nil check per site.
func (cl *Cluster) SetTracer(sc *obs.Scope) {
	cl.Net.SetTracer(sc)
	for _, node := range cl.Nodes {
		node.NIC.tr = sc
	}
}

// SetFaults installs a fault-injection impairment (e.g. a fault.Plan) on
// the cluster's network. Myrinet leaves reliability to the NIC control
// program, so every impairment semantics — including drops and rejects —
// applies; the MCP's ACK/timeout and receiver-driven NACK retransmission
// paths are what recover from them.
func (cl *Cluster) SetFaults(imp netsim.Impairment) {
	cl.Net.SetImpairment(imp)
}

// Stats sums the NIC statistics over all nodes.
func (cl *Cluster) Stats() NICStats {
	var total NICStats
	for _, node := range cl.Nodes {
		s := node.NIC.Stats
		total.TokensEnqueued += s.TokensEnqueued
		total.DataSent += s.DataSent
		total.AcksSent += s.AcksSent
		total.AcksRecv += s.AcksRecv
		total.Retransmits += s.Retransmits
		total.SeqDrops += s.SeqDrops
		total.TokenDrops += s.TokenDrops
		total.DupAcks += s.DupAcks
		total.EventsPosted += s.EventsPosted
		total.CollSent += s.CollSent
		total.CollRecvd += s.CollRecvd
		total.CollResent += s.CollResent
		total.NacksSent += s.NacksSent
		total.NacksRecvd += s.NacksRecvd
		total.StaleColl += s.StaleColl
		total.BarriersRun += s.BarriersRun
	}
	return total
}
