package fault_test

import (
	"testing"

	"nicbarrier/internal/barrier"
	"nicbarrier/internal/elan"
	"nicbarrier/internal/fault"
	"nicbarrier/internal/hwprofile"
	"nicbarrier/internal/myrinet"
	"nicbarrier/internal/sim"
)

func identityIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// The satellite acceptance test: a Myrinet barrier completes under 20%
// random loss because the MCP's receiver-driven NACK retransmission
// recovers every lost notification.
func TestMyrinetBarrierSurvives20PercentLoss(t *testing.T) {
	eng := sim.NewEngine()
	cl := myrinet.NewCluster(eng, hwprofile.LANaiXPCluster(), 16, nil)
	plan := fault.NewPlan(3, fault.Loss(0.20))
	cl.SetFaults(plan)
	s := myrinet.NewSession(cl, identityIDs(16), myrinet.SchemeCollective,
		barrier.Dissemination, barrier.Options{})
	const iters = 30
	doneAt := s.Run(iters) // panics on deadlock: completion IS the assertion
	eng.Run()
	for i := 1; i < iters; i++ {
		if doneAt[i] <= doneAt[i-1] {
			t.Fatalf("iteration %d completed at %v, not after %v", i, doneAt[i], doneAt[i-1])
		}
	}
	net := cl.Net.Counters()
	if net.Dropped == 0 {
		t.Fatal("20% loss plan dropped nothing")
	}
	nic := cl.Stats()
	if nic.NacksSent == 0 || nic.CollResent == 0 {
		t.Fatalf("no receiver-driven recovery: %+v", nic)
	}
	st := plan.Stats()[0]
	if st.Dropped != net.Dropped {
		t.Fatalf("plan accounted %d drops, network %d", st.Dropped, net.Dropped)
	}
	frac := float64(net.Dropped) / float64(net.Sent)
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("drop fraction %v, want ~0.20", frac)
	}
}

// A link-loss-only fault plan cannot touch Quadrics: the Elan substrate
// wraps impairments in netsim.DelayOnly, so the faulted run is
// bit-identical to the clean one. (Fail-stop crashes are NOT link loss
// and do pass through — see TestQuadricsCrashDropsRDMAs.)
func TestQuadricsImmuneToLossOnlyPlan(t *testing.T) {
	measure := func(plan *fault.Plan) []sim.Time {
		eng := sim.NewEngine()
		cl := elan.NewCluster(eng, hwprofile.Elan3Cluster(), 8)
		if plan != nil {
			cl.SetFaults(plan)
		}
		s := elan.NewSession(cl, identityIDs(8), elan.SchemeChained,
			barrier.Dissemination, barrier.Options{})
		doneAt := s.Run(20)
		eng.Run()
		if plan != nil && cl.Net.Counters().Dropped != 0 {
			t.Fatal("hardware-reliable network dropped packets")
		}
		return doneAt
	}
	clean := measure(nil)
	lossy := measure(fault.NewPlan(3, fault.Loss(0.5), fault.DropEveryNth(2)))
	for i := range clean {
		if clean[i] != lossy[i] {
			t.Fatalf("iteration %d: clean %v vs lossy-plan %v", i, clean[i], lossy[i])
		}
	}
}

// Fail-stop crashes pass through the DelayOnly wrapper: hardware
// reliability recovers lost packets, not dead endpoints. A permanent
// crash therefore silences a Quadrics barrier — RDMAs to and from the
// victim drop as fail-stop and the group stalls instead of completing
// (recovery from this state is the communicator layer's op-deadline
// machinery, not the substrate's).
func TestQuadricsCrashDropsRDMAs(t *testing.T) {
	eng := sim.NewEngine()
	cl := elan.NewCluster(eng, hwprofile.Elan3Cluster(), 8)
	cl.SetFaults(fault.NewPlan(3, fault.Crash(3, fault.Window{})))
	s := elan.NewSession(cl, identityIDs(8), elan.SchemeChained,
		barrier.Dissemination, barrier.Options{})
	s.Launch(5)
	if eng.RunCondition(s.Done) {
		t.Fatal("barrier completed despite a permanently crashed member")
	}
	net := cl.Net.Counters()
	if net.FailStopped == 0 {
		t.Fatalf("crash produced no fail-stop drops: %+v", net)
	}
	if net.Dropped != net.FailStopped {
		t.Fatalf("non-fail-stop drops on a hardware-reliable network: %+v", net)
	}
}

// Delay-type faults DO reach Quadrics: hardware reliability is about
// loss, not latency.
func TestQuadricsFeelsDelayFaults(t *testing.T) {
	measure := func(plan *fault.Plan) sim.Duration {
		eng := sim.NewEngine()
		cl := elan.NewCluster(eng, hwprofile.Elan3Cluster(), 8)
		if plan != nil {
			cl.SetFaults(plan)
		}
		s := elan.NewSession(cl, identityIDs(8), elan.SchemeChained,
			barrier.Dissemination, barrier.Options{})
		return s.MeanLatency(2, 20)
	}
	clean := measure(nil)
	delayed := measure(fault.NewPlan(3, fault.Latency(sim.Micros(5), 0)))
	if delayed < clean+sim.Micros(5) {
		t.Fatalf("delay fault had no effect: clean %v, delayed %v", clean, delayed)
	}
}

// A time-windowed partition kills traffic between one node pair mid-run,
// then heals; NACK retransmission repairs the missed rounds and the
// barrier sequence completes.
func TestPartitionHealsAndBarrierRecovers(t *testing.T) {
	eng := sim.NewEngine()
	cl := myrinet.NewCluster(eng, hwprofile.LANaiXPCluster(), 8, nil)
	// Ranks = nodes (identity): rank 1 notifies rank 3 at dissemination
	// distance 2, so the pair really exchanges traffic every barrier.
	plan := fault.NewPlan(3, fault.Partition(1, 3, fault.Between(30, 150)))
	cl.SetFaults(plan)
	s := myrinet.NewSession(cl, identityIDs(8), myrinet.SchemeCollective,
		barrier.Dissemination, barrier.Options{})
	s.Run(40)
	eng.Run()
	net := cl.Net.Counters()
	if net.HopDropped == 0 {
		t.Fatal("partition window dropped nothing mid-route")
	}
	if cl.Stats().CollResent == 0 {
		t.Fatal("no retransmissions after the partition healed")
	}
	// The partition is windowed: drops stop once it heals, so the vast
	// majority of traffic still flows.
	if net.Dropped*10 > net.Sent {
		t.Fatalf("windowed partition dropped %d of %d packets", net.Dropped, net.Sent)
	}
}

// A crashed node drops everything during its window; after recovery the
// whole session resynchronizes through retransmission.
func TestCrashRecovery(t *testing.T) {
	eng := sim.NewEngine()
	cl := myrinet.NewCluster(eng, hwprofile.LANaiXPCluster(), 8, nil)
	plan := fault.NewPlan(3, fault.Crash(5, fault.Between(0, 200)))
	cl.SetFaults(plan)
	s := myrinet.NewSession(cl, identityIDs(8), myrinet.SchemeCollective,
		barrier.Dissemination, barrier.Options{})
	doneAt := s.Run(20)
	eng.Run()
	if cl.Net.Counters().Dropped == 0 {
		t.Fatal("crash window dropped nothing")
	}
	// The first barrier cannot complete before the crash heals at 200us
	// (node 5's notifications are black-holed until then).
	if doneAt[0] < sim.Time(sim.Micros(200)) {
		t.Fatalf("first barrier completed at %v, before the crash healed", doneAt[0])
	}
	last := doneAt[len(doneAt)-1]
	prev := doneAt[len(doneAt)-2]
	// Steady state after recovery: clean consecutive barriers again.
	if lat := last.Sub(prev); lat > sim.Micros(100) {
		t.Fatalf("post-recovery barrier latency %v, want clean steady state", lat)
	}
}

// Regression: deterministic every-2nd-packet loss used to livelock the
// collective protocol — the NACK/resend cycle advanced packet counters by
// an even stride, so the resent notification always landed on the dropped
// phase. Two things break the resonance now: every-Nth counts per flow,
// and repeat NACKs escalate to a duplicated resend (a one-in-N filter
// cannot discard two consecutive packets on one flow).
func TestDeterministicLossResonanceBroken(t *testing.T) {
	eng := sim.NewEngine()
	cl := myrinet.NewCluster(eng, hwprofile.LANaiXPCluster(), 4, nil)
	cl.SetFaults(fault.NewPlan(5, fault.DropEveryNth(2)))
	s := myrinet.NewSession(cl, identityIDs(4), myrinet.SchemeCollective,
		barrier.Dissemination, barrier.Options{})
	s.Run(11) // panics on deadlock; pre-fix this livelocked instead
	eng.Run()
	net := cl.Net.Counters()
	if net.Dropped == 0 {
		t.Fatal("every-2nd plan dropped nothing")
	}
	// The run must terminate promptly, not after millions of futile
	// retransmission rounds.
	if eng.Executed() > 100_000 {
		t.Fatalf("recovery needed %d events for 11 barriers: resonance is back", eng.Executed())
	}
}

// SlowNIC adds per-packet processing delay on one node and slows every
// barrier by at least that much per dissemination round involving it.
func TestSlowNICSlowsBarrier(t *testing.T) {
	measure := func(plan *fault.Plan) sim.Duration {
		eng := sim.NewEngine()
		cl := myrinet.NewCluster(eng, hwprofile.LANaiXPCluster(), 8, nil)
		if plan != nil {
			cl.SetFaults(plan)
		}
		s := myrinet.NewSession(cl, identityIDs(8), myrinet.SchemeCollective,
			barrier.Dissemination, barrier.Options{})
		return s.MeanLatency(2, 20)
	}
	clean := measure(nil)
	slowed := measure(fault.NewPlan(3, fault.SlowNIC(0, sim.Micros(4))))
	if slowed <= clean+sim.Micros(3) {
		t.Fatalf("slow NIC had no effect: clean %v, slowed %v", clean, slowed)
	}
}
