package benchreg

import (
	"fmt"
	"runtime"
	"time"

	"nicbarrier/internal/harness"
	"nicbarrier/internal/sim"
)

// Collect runs each scenario `repeats` times under cfg and aggregates
// every flattened data point into a Report: per-metric median and
// spread across repeats, plus per-scenario simulator-speed metrics —
// "<id>/wall_ns" (total wall clock), "<id>/ns_per_event" and
// "<id>/allocs_per_event" (wall clock and heap allocations divided by
// the number of simulation events the scenario fired, measured as the
// delta of sim.TotalExecuted and runtime.MemStats.Mallocs across the
// run). The per-event pair is how the zero-allocation hot path shows
// up in reports: a change that reintroduces per-packet allocation moves
// allocs_per_event visibly even when wall_ns noise hides it.
//
// Simulated metrics are deterministic per seed, so their spread is zero
// and the median is exact; repeats exist to give wall-clock and
// allocator metrics a noise estimate and to keep the pipeline honest if
// a future scenario introduces nondeterminism.
func Collect(cfg harness.Config, fidelity string, repeats int, scens []harness.Scenario) (*Report, error) {
	if repeats < 1 {
		return nil, fmt.Errorf("benchreg: repeats %d < 1", repeats)
	}
	if len(scens) == 0 {
		return nil, fmt.Errorf("benchreg: no scenarios to collect")
	}
	r := &Report{
		Schema: Schema,
		GitRev: GitRev(),
		Seed:   cfg.Seed,
		Config: RunConfig{
			Fidelity: fidelity,
			Warmup:   cfg.Warmup,
			Iters:    cfg.Iters,
			Repeats:  repeats,
		},
	}
	for _, s := range scens {
		r.Config.Scenarios = append(r.Config.Scenarios, s.ID)
		samples := make(map[string][]float64) // metric name -> one value per repeat
		units := make(map[string]string)
		var wall, nsPerEvent, allocsPerEvent []float64
		var order []string // first repeat's metric order, kept for output stability
		for rep := 0; rep < repeats; rep++ {
			var memBefore, memAfter runtime.MemStats
			runtime.ReadMemStats(&memBefore)
			eventsBefore := sim.TotalExecuted()
			start := time.Now()
			pts := s.Points(cfg)
			elapsed := float64(time.Since(start).Nanoseconds())
			events := sim.TotalExecuted() - eventsBefore
			runtime.ReadMemStats(&memAfter)
			wall = append(wall, elapsed)
			if events > 0 {
				nsPerEvent = append(nsPerEvent, elapsed/float64(events))
				allocsPerEvent = append(allocsPerEvent,
					float64(memAfter.Mallocs-memBefore.Mallocs)/float64(events))
			}
			if len(pts) == 0 {
				return nil, fmt.Errorf("benchreg: scenario %q produced no points", s.ID)
			}
			for _, p := range pts {
				if rep == 0 {
					if _, dup := units[p.Name]; dup {
						return nil, fmt.Errorf("benchreg: scenario %q emits duplicate metric %q", s.ID, p.Name)
					}
					order = append(order, p.Name)
					units[p.Name] = p.Unit
				} else if _, known := units[p.Name]; !known {
					return nil, fmt.Errorf("benchreg: scenario %q metric set unstable across repeats (new %q)", s.ID, p.Name)
				}
				samples[p.Name] = append(samples[p.Name], p.Value)
			}
		}
		for _, name := range order {
			vals := samples[name]
			if len(vals) != repeats {
				return nil, fmt.Errorf("benchreg: scenario %q metric %q seen in %d/%d repeats", s.ID, name, len(vals), repeats)
			}
			r.Metrics = append(r.Metrics, Metric{
				Name:   name,
				Unit:   units[name],
				Value:  Median(vals),
				Spread: spread(vals),
			})
		}
		r.Metrics = append(r.Metrics, Metric{
			Name:   s.ID + "/wall_ns",
			Unit:   "ns/op",
			Value:  Median(wall),
			Spread: spread(wall),
		})
		// Scenarios that never touch the event engine (pure analytic
		// models) have no per-event cost to report.
		if len(nsPerEvent) == repeats {
			r.Metrics = append(r.Metrics,
				Metric{
					Name:   s.ID + "/ns_per_event",
					Unit:   "ns/ev",
					Value:  Median(nsPerEvent),
					Spread: spread(nsPerEvent),
				},
				Metric{
					Name:   s.ID + "/allocs_per_event",
					Unit:   "allocs/ev",
					Value:  Median(allocsPerEvent),
					Spread: spread(allocsPerEvent),
				})
		}
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

func spread(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
