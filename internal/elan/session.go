package elan

import (
	"fmt"

	"nicbarrier/internal/barrier"
	"nicbarrier/internal/core"
	"nicbarrier/internal/sim"
)

// Scheme selects a Quadrics barrier implementation.
type Scheme int

// The barrier implementations of Fig. 7.
const (
	// SchemeChained is the paper's NIC-based barrier: chained RDMA
	// descriptors, each triggered by a remote event.
	SchemeChained Scheme = iota
	// SchemeGsync is Elanlib's tree-based elan_gsync() (host-driven
	// gather-broadcast, hardware broadcast disabled).
	SchemeGsync
	// SchemeHW is elan_hgsync()'s hardware-broadcast barrier.
	SchemeHW
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeChained:
		return "nic-chained-rdma"
	case SchemeGsync:
		return "elan-gsync"
	case SchemeHW:
		return "elan-hw"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// SessionGroupID is the group ID sessions install.
const SessionGroupID = 1

// Session runs consecutive barriers over a subset of an Elan cluster.
type Session struct {
	cl      *Cluster
	nodeIDs []int
	scheme  Scheme

	members []*member
	iters   int
	doneAt  []sim.Time
	pending []int
}

type member struct {
	s     *Session
	rank  int
	node  *Node
	group *core.Group
	// hostOp drives the gsync tree from the host; nil otherwise.
	hostOp *core.OpState
	// hwSeq tracks hardware-barrier rounds for this member.
	hwSeq int
}

// NewSession prepares a barrier session over nodeIDs (rank order; the
// harness passes a random permutation). alg/opts select the schedule for
// SchemeChained; SchemeGsync always uses the gather-broadcast tree (that
// is what elan_gsync is) and SchemeHW uses none.
func NewSession(cl *Cluster, nodeIDs []int, scheme Scheme, alg barrier.Algorithm, opts barrier.Options) *Session {
	if len(nodeIDs) == 0 {
		panic("elan: empty session")
	}
	s := &Session{cl: cl, nodeIDs: append([]int(nil), nodeIDs...), scheme: scheme}
	if scheme == SchemeHW {
		cl.hw.configure(s.nodeIDs)
	}
	for rank, id := range s.nodeIDs {
		if id < 0 || id >= len(cl.Nodes) {
			panic(fmt.Sprintf("elan: node %d outside cluster of %d", id, len(cl.Nodes)))
		}
		m := &member{
			s:     s,
			rank:  rank,
			node:  cl.Nodes[id],
			group: core.NewGroup(SessionGroupID, s.nodeIDs, rank),
		}
		switch scheme {
		case SchemeChained:
			sched := barrier.New(alg, len(nodeIDs), rank, opts)
			m.node.NIC.ArmChain(m.group, core.NewOpState(sched))
		case SchemeGsync:
			sched := barrier.New(barrier.GatherBroadcast, len(nodeIDs), rank, opts)
			m.hostOp = core.NewOpState(sched)
		case SchemeHW:
			// No schedule: one network transaction synchronizes all.
		default:
			panic(fmt.Sprintf("elan: unknown scheme %d", int(scheme)))
		}
		m.node.Host.OnEvent = m.onEvent
		s.members = append(s.members, m)
	}
	return s
}

// Run executes iters consecutive barriers, returning the completion time
// of each iteration.
func (s *Session) Run(iters int) []sim.Time {
	if iters < 1 {
		panic(fmt.Sprintf("elan: iterations %d", iters))
	}
	s.iters = iters
	s.doneAt = make([]sim.Time, iters)
	s.pending = make([]int, iters)
	for i := range s.pending {
		s.pending[i] = len(s.members)
	}
	for _, m := range s.members {
		m.start(0)
	}
	finished := func() bool { return s.pending[iters-1] == 0 }
	if !s.cl.Eng.RunCondition(finished) {
		panic(fmt.Sprintf("elan: %s barrier deadlocked (%d nodes, pending %v)",
			s.scheme, len(s.members), s.pending))
	}
	return s.doneAt
}

// MeanLatency mirrors the paper's methodology: warmup iterations followed
// by averaged measured iterations.
func (s *Session) MeanLatency(warmup, iters int) sim.Duration {
	doneAt := s.Run(warmup + iters)
	var start sim.Time
	if warmup > 0 {
		start = doneAt[warmup-1]
	}
	return doneAt[warmup+iters-1].Sub(start) / sim.Duration(iters)
}

// RunSkewed runs a single barrier whose members enter with the given
// per-rank offsets and reports the time from the LAST entry to global
// completion — the cost visible to the last process, which is what an
// application's critical path sees. The paper's point about elan_hgsync
// ("it requires that the involving processes be well synchronized...
// hardly the case for parallel programs over large size clusters") shows
// up here as test-and-set retries once the skew exceeds the sync window,
// while the NIC-based barrier simply buffers early notifications.
func (s *Session) RunSkewed(skew []sim.Duration) sim.Duration {
	if len(skew) != len(s.members) {
		panic(fmt.Sprintf("elan: %d offsets for %d members", len(skew), len(s.members)))
	}
	s.iters = 1
	s.doneAt = make([]sim.Time, 1)
	s.pending = []int{len(s.members)}
	var last sim.Time
	for i, m := range s.members {
		m := m
		if at := sim.Time(0).Add(skew[i]); at > last {
			last = at
		}
		s.cl.Eng.After(skew[i], func() { m.start(0) })
	}
	if !s.cl.Eng.RunCondition(func() bool { return s.pending[0] == 0 }) {
		panic(fmt.Sprintf("elan: skewed %s barrier deadlocked", s.scheme))
	}
	return s.doneAt[0].Sub(last)
}

func (s *Session) complete(rank, seq int) {
	if seq >= s.iters {
		panic(fmt.Sprintf("elan: completion for iteration %d beyond %d", seq, s.iters))
	}
	s.pending[seq]--
	if s.pending[seq] < 0 {
		panic(fmt.Sprintf("elan: double completion of iteration %d by rank %d", seq, rank))
	}
	if s.pending[seq] == 0 {
		s.doneAt[seq] = s.cl.Eng.Now()
	}
	if next := seq + 1; next < s.iters {
		s.members[rank].start(next)
	}
}

func (m *member) start(seq int) {
	switch m.s.scheme {
	case SchemeChained:
		m.node.Host.TriggerChain(SessionGroupID)
	case SchemeHW:
		m.node.Host.PostHWBarrier()
	case SchemeGsync:
		sends, done, err := m.hostOp.Start(seq)
		if err != nil {
			panic(fmt.Sprintf("elan: rank %d: %v", m.rank, err))
		}
		m.gsyncSend(seq, sends)
		if done {
			m.s.complete(m.rank, seq)
		}
	}
}

func (m *member) gsyncSend(seq int, ranks []int) {
	for _, r := range ranks {
		m.node.Host.SendRemoteEvent(m.group.NodeOf(r), SessionGroupID, seq)
	}
}

func (m *member) onEvent(ev Event) {
	switch ev.Kind {
	case EvBarrierDone:
		m.s.complete(m.rank, ev.Seq)
	case EvHWBarrier:
		seq := m.hwSeq
		m.hwSeq++
		m.s.complete(m.rank, seq)
	case EvRemote:
		fromRank, ok := m.group.RankOf(ev.FromNode)
		if !ok {
			panic(fmt.Sprintf("elan: gsync event from non-member node %d", ev.FromNode))
		}
		// Elanlib's tree bookkeeping is heavier than the bare poll
		// already charged by event delivery.
		m.node.Host.Compute(m.node.Prof.GsyncPollExtraCycles, func() {
			sends, done, err := m.hostOp.Arrive(ev.Seq, fromRank)
			if err != nil {
				panic(fmt.Sprintf("elan: rank %d: %v", m.rank, err))
			}
			m.gsyncSend(m.hostOp.Seq(), sends)
			if done {
				m.s.complete(m.rank, m.hostOp.Seq())
			}
		})
	}
}
