package core

import (
	"testing"
	"testing/quick"

	"nicbarrier/internal/barrier"
	"nicbarrier/internal/sim"
)

func mustStart(t *testing.T, o *OpState, seq int) (sends []int, completed bool) {
	t.Helper()
	sends, completed, err := o.Start(seq)
	if err != nil {
		t.Fatal(err)
	}
	return sends, completed
}

func mustArrive(t *testing.T, o *OpState, seq, from int) (sends []int, completed bool) {
	t.Helper()
	sends, completed, err := o.Arrive(seq, from)
	if err != nil {
		t.Fatal(err)
	}
	return sends, completed
}

func TestOpSingletonCompletesAtStart(t *testing.T) {
	o := NewOpState(barrier.New(barrier.Dissemination, 1, 0, barrier.Options{}))
	sends, completed := mustStart(t, o, 0)
	if len(sends) != 0 || !completed {
		t.Fatalf("sends=%v completed=%v", sends, completed)
	}
	if o.Active() {
		t.Fatal("still active")
	}
}

func TestOpDisseminationTwoRanks(t *testing.T) {
	// n=2: each rank sends one message and waits for one.
	o := NewOpState(barrier.New(barrier.Dissemination, 2, 0, barrier.Options{}))
	sends, completed := mustStart(t, o, 0)
	if len(sends) != 1 || sends[0] != 1 || completed {
		t.Fatalf("start: sends=%v completed=%v", sends, completed)
	}
	if got := o.Missing(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("missing = %v", got)
	}
	sends, completed = mustArrive(t, o, 0, 1)
	if len(sends) != 0 || !completed {
		t.Fatalf("arrive: sends=%v completed=%v", sends, completed)
	}
	if o.Missing() != nil {
		t.Fatalf("missing after completion: %v", o.Missing())
	}
}

func TestOpDisseminationCascade(t *testing.T) {
	// n=4 rank 0: step m sends to (0+2^m)%4, waits on (0-2^m)%4:
	// step 0: send 1 wait 3; step 1: send 2 wait 2.
	o := NewOpState(barrier.New(barrier.Dissemination, 4, 0, barrier.Options{}))
	sends, _ := mustStart(t, o, 0)
	if len(sends) != 1 || sends[0] != 1 {
		t.Fatalf("start sends %v", sends)
	}
	// Step-1 wait arrives early: no progress yet.
	sends, completed := mustArrive(t, o, 0, 2)
	if len(sends) != 0 || completed {
		t.Fatalf("early arrival unblocked: %v %v", sends, completed)
	}
	if o.Step() != 0 {
		t.Fatalf("step = %d", o.Step())
	}
	// Step-0 wait arrives: both steps unblock, send to 2 fires, complete.
	sends, completed = mustArrive(t, o, 0, 3)
	if len(sends) != 1 || sends[0] != 2 || !completed {
		t.Fatalf("cascade: sends=%v completed=%v", sends, completed)
	}
}

func TestOpHasSent(t *testing.T) {
	o := NewOpState(barrier.New(barrier.Dissemination, 4, 0, barrier.Options{}))
	if o.HasSent(0, 1) {
		t.Fatal("HasSent before start")
	}
	mustStart(t, o, 0)
	if !o.HasSent(0, 1) {
		t.Fatal("step-0 send not recorded")
	}
	if o.HasSent(0, 2) {
		t.Fatal("step-1 send recorded before step started")
	}
	if o.HasSent(0, 3) {
		t.Fatal("HasSent to a rank never sent to")
	}
	mustArrive(t, o, 0, 3)
	mustArrive(t, o, 0, 2)
	// Completed: everything sent.
	if !o.HasSent(0, 1) || !o.HasSent(0, 2) {
		t.Fatal("HasSent after completion")
	}
	if o.HasSent(1, 1) {
		t.Fatal("HasSent for future op")
	}
}

func TestOpEarlyBufferAcrossOps(t *testing.T) {
	// Rank 0, n=2, consecutive barriers: peer's message for op 1 arrives
	// while op 0 is still active.
	o := NewOpState(barrier.New(barrier.Dissemination, 2, 0, barrier.Options{}))
	mustStart(t, o, 0)
	if sends, completed := mustArrive(t, o, 1, 1); len(sends) != 0 || completed {
		t.Fatalf("future arrival acted on: %v %v", sends, completed)
	}
	if _, completed := mustArrive(t, o, 0, 1); !completed {
		t.Fatal("op 0 did not complete")
	}
	// Op 1 starts with the buffered arrival already in: completes on the
	// spot after issuing its send.
	sends, completed := mustStart(t, o, 1)
	if len(sends) != 1 || !completed {
		t.Fatalf("op 1 with buffered arrival: sends=%v completed=%v", sends, completed)
	}
}

func TestOpDuplicateAndStale(t *testing.T) {
	o := NewOpState(barrier.New(barrier.Dissemination, 2, 0, barrier.Options{}))
	mustStart(t, o, 0)
	mustArrive(t, o, 0, 1)
	// Duplicate of a completed op: stale.
	mustArrive(t, o, 0, 1)
	if o.Stale != 1 {
		t.Fatalf("stale = %d", o.Stale)
	}
	mustStart(t, o, 1)
	mustArrive(t, o, 1, 1)
	if o.Duplicates != 0 {
		t.Fatalf("duplicates = %d", o.Duplicates)
	}
	// Op 1 completed; op 2 not started. A retransmit for op 2 buffers,
	// then its duplicate counts.
	mustArrive(t, o, 2, 1)
	mustArrive(t, o, 2, 1)
	if o.Duplicates != 1 {
		t.Fatalf("duplicates = %d", o.Duplicates)
	}
}

func TestOpErrors(t *testing.T) {
	o := NewOpState(barrier.New(barrier.Dissemination, 4, 0, barrier.Options{}))
	if _, _, err := o.Start(1); err == nil {
		t.Error("Start(1) before Start(0) accepted")
	}
	mustStart(t, o, 0)
	if _, _, err := o.Start(1); err == nil {
		t.Error("Start while active accepted")
	}
	if _, _, err := o.Arrive(0, 1); err == nil {
		t.Error("arrival from rank never waited on accepted")
	}
	if _, _, err := o.Arrive(2, 3); err == nil {
		t.Error("impossible lookahead accepted")
	}
}

// driveGroup runs a full group of OpStates against each other with a
// deterministic random delivery order, optionally dropping each message
// once (recovered via the NACK path). Returns false on any failure.
func driveGroup(alg barrier.Algorithm, n int, ops int, seed uint64, lossRate float64) bool {
	rng := sim.NewRNG(seed)
	states := make([]*OpState, n)
	for r := 0; r < n; r++ {
		states[r] = NewOpState(barrier.New(alg, n, r, barrier.Options{}))
	}
	type msg struct{ seq, from, to int }
	var inflight []msg

	completed := make([]int, n) // next op to complete per rank

	send := func(seq, from int, tos []int) {
		for _, to := range tos {
			inflight = append(inflight, msg{seq, from, to})
		}
	}
	for op := 0; op < ops; op++ {
		for r := 0; r < n; r++ {
			sends, done, err := states[r].Start(op)
			if err != nil {
				return false
			}
			send(op, r, sends)
			if done {
				completed[r]++
			}
		}
		// Deliver until the op completes everywhere. Lost messages are
		// re-sent by consulting HasSent, mimicking the NACK path.
		for {
			allDone := true
			for r := 0; r < n; r++ {
				if completed[r] <= op {
					allDone = false
				}
			}
			if allDone {
				break
			}
			if len(inflight) == 0 {
				// Deadlock: recover every missing message via NACK.
				for r := 0; r < n; r++ {
					for _, from := range states[r].Missing() {
						if states[from].HasSent(states[r].Seq(), r) {
							inflight = append(inflight, msg{states[r].Seq(), from, r})
						}
					}
				}
				if len(inflight) == 0 {
					return false // true deadlock
				}
			}
			i := rng.Intn(len(inflight))
			m := inflight[i]
			inflight[i] = inflight[len(inflight)-1]
			inflight = inflight[:len(inflight)-1]
			if rng.Bool(lossRate) {
				continue // dropped; NACK path will recover
			}
			sends, done, err := states[m.to].Arrive(m.seq, m.from)
			if err != nil {
				return false
			}
			send(states[m.to].Seq(), m.to, sends)
			if done {
				completed[m.to]++
			}
		}
	}
	return true
}

func TestOpGroupExecutionAllAlgorithms(t *testing.T) {
	for _, alg := range []barrier.Algorithm{
		barrier.Dissemination, barrier.PairwiseExchange, barrier.GatherBroadcast,
	} {
		for _, n := range []int{1, 2, 3, 5, 8, 13, 16, 33} {
			if !driveGroup(alg, n, 4, 42, 0) {
				t.Fatalf("%v n=%d failed", alg, n)
			}
		}
	}
}

func TestOpGroupExecutionWithLoss(t *testing.T) {
	for _, alg := range []barrier.Algorithm{
		barrier.Dissemination, barrier.PairwiseExchange, barrier.GatherBroadcast,
	} {
		for _, n := range []int{2, 5, 8, 12} {
			if !driveGroup(alg, n, 3, 7, 0.3) {
				t.Fatalf("%v n=%d with loss failed", alg, n)
			}
		}
	}
}

// Property: random (algorithm, size, seed, loss) always completes.
func TestOpGroupProperty(t *testing.T) {
	f := func(algRaw, nRaw uint8, seed uint64, lossRaw uint8) bool {
		alg := barrier.Algorithm(int(algRaw) % 3)
		n := int(nRaw)%24 + 1
		loss := float64(lossRaw%50) / 100
		return driveGroup(alg, n, 3, seed, loss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
