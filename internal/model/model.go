// Package model implements the paper's analytical barrier-latency model
// (Section 8.3):
//
//	T_barrier = T_init + (⌈log2 N⌉ − 1) · T_trig + T_adj
//
// where T_init is the two-node barrier latency (each NIC only sends the
// initial message), T_trig is the cost of each further NIC-triggered
// message, and T_adj is an adjustment for secondary effects (PCI traffic,
// bookkeeping). The paper derives, for its two testbeds:
//
//	Myrinet (LANai-XP, 2.4 GHz Xeon): T = 3.60 + (⌈log2 N⌉−1)·3.50 + 3.84
//	Quadrics (Elan3, 700 MHz PIII):   T = 2.25 + (⌈log2 N⌉−1)·2.32 − 1.00
//
// predicting 38.94 us and 22.13 us respectively on 1024 nodes. Fit
// recovers model parameters from measured sweeps by least squares so the
// simulation's own model can be compared against the paper's.
package model

import (
	"fmt"
	"math"

	"nicbarrier/internal/barrier"
)

// Model holds the three parameters, in microseconds.
type Model struct {
	Tinit float64
	Ttrig float64
	Tadj  float64
}

// PaperMyrinetXP is the paper's fitted model for the 2.4 GHz Xeon /
// LANai-XP cluster.
func PaperMyrinetXP() Model { return Model{Tinit: 3.60, Ttrig: 3.50, Tadj: 3.84} }

// PaperQuadrics is the paper's fitted model for the 700 MHz / Elan3
// cluster.
func PaperQuadrics() Model { return Model{Tinit: 2.25, Ttrig: 2.32, Tadj: -1.00} }

// Predict evaluates the model at n nodes, in microseconds.
func (m Model) Predict(n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("model: predict for %d nodes", n))
	}
	if n == 1 {
		return 0
	}
	steps := barrier.Log2Ceil(n)
	return m.Tinit + float64(steps-1)*m.Ttrig + m.Tadj
}

// String renders the model in the paper's notation.
func (m Model) String() string {
	sign := "+"
	adj := m.Tadj
	if adj < 0 {
		sign = "-"
		adj = -adj
	}
	return fmt.Sprintf("T = %.2f + (ceil(log2 N)-1)*%.2f %s %.2f", m.Tinit, m.Ttrig, sign, adj)
}

// Fit recovers model parameters from measured (nodes, latency-us) pairs
// by ordinary least squares over x = ⌈log2 N⌉ − 1. The slope becomes
// Ttrig. Following the paper, Tinit is the measured two-node latency when
// an n=2 point is present (T(2) = Tinit + Tadj by definition, and the
// paper defines Tinit as the measured two-node latency, folding the rest
// into Tadj); without an n=2 point the intercept is assigned to Tinit and
// Tadj is zero.
func Fit(ns []int, latencies []float64) (Model, error) {
	if len(ns) != len(latencies) {
		return Model{}, fmt.Errorf("model: %d sizes vs %d latencies", len(ns), len(latencies))
	}
	if len(ns) < 2 {
		return Model{}, fmt.Errorf("model: need at least two points, got %d", len(ns))
	}
	var sx, sy, sxx, sxy float64
	twoNode := math.NaN()
	distinct := map[int]bool{}
	for i, n := range ns {
		if n < 2 {
			return Model{}, fmt.Errorf("model: cannot fit point at n=%d", n)
		}
		x := float64(barrier.Log2Ceil(n) - 1)
		y := latencies[i]
		distinct[barrier.Log2Ceil(n)] = true
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		if n == 2 {
			twoNode = y
		}
	}
	if len(distinct) < 2 {
		return Model{}, fmt.Errorf("model: all points share one log2 bucket; slope undetermined")
	}
	k := float64(len(ns))
	den := k*sxx - sx*sx
	slope := (k*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / k
	m := Model{Ttrig: slope}
	if !math.IsNaN(twoNode) {
		m.Tinit = twoNode
		m.Tadj = intercept - twoNode
	} else {
		m.Tinit = intercept
	}
	return m, nil
}

// MaxRelativeError reports the worst |predicted−measured|/measured over
// the points, a fit-quality summary for EXPERIMENTS.md.
func (m Model) MaxRelativeError(ns []int, latencies []float64) float64 {
	worst := 0.0
	for i, n := range ns {
		if latencies[i] == 0 {
			continue
		}
		rel := math.Abs(m.Predict(n)-latencies[i]) / latencies[i]
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
