package nicbarrier

import (
	"fmt"

	"nicbarrier/internal/barrier"
	"nicbarrier/internal/comm"
	"nicbarrier/internal/elan"
	"nicbarrier/internal/harness"
	"nicbarrier/internal/hwprofile"
	"nicbarrier/internal/myrinet"
	"nicbarrier/internal/netsim"
	"nicbarrier/internal/sim"
)

// Cluster is a persistent simulated cluster that many process groups
// share — the multi-tenant face of the library. Where the one-shot
// Measure* functions build a cluster, run one group, and throw both
// away, a Cluster lives across operations: create groups over arbitrary
// node subsets with NewGroup, run their collectives (concurrently, via
// MeasureWorkload/RunWorkload, or back to back via the Group methods),
// and let them contend for the NIC group-queue slots, firmware
// processors and links the way the paper's per-group protocol intends.
//
//	c, _ := nicbarrier.NewCluster(nicbarrier.Config{
//		Interconnect: nicbarrier.MyrinetLANaiXP,
//		Nodes:        16,
//		Scheme:       nicbarrier.NICCollective,
//	})
//	g1, _ := c.NewGroup([]int{0, 1, 2, 3})
//	g2, _ := c.NewGroup([]int{4, 5, 6, 7})
//	res, _ := g1.Barrier(10, 1000) // g2 may run its own ops on the same wire
type Cluster struct {
	cfg Config
	c   *comm.Cluster
	// replicas are the extra workload shards under Config.Partitions > 1
	// (shard 0 is c itself). Single-group measurements never touch them;
	// RunWorkload/RunChurn deal tenants across [c, replicas...].
	replicas []*comm.Cluster
}

// AdmissionPolicy decides what a group install does when a member NIC's
// group slots are exhausted.
type AdmissionPolicy int

// Admission policies.
const (
	// AdmitError fails the install cleanly (the default and the
	// historical behavior).
	AdmitError AdmissionPolicy = iota
	// AdmitQueue defers the install until a Group.Close frees the slots
	// it needs; deferred installs are served strictly FIFO.
	AdmitQueue
	// AdmitSpread re-places the group on the member NICs with the most
	// free slots.
	AdmitSpread
	// AdmitPack re-places the group on the fullest NICs that still have
	// a free slot.
	AdmitPack
)

// String implements fmt.Stringer.
func (p AdmissionPolicy) String() string { return comm.AdmitPolicy(p).String() }

// AdmissionConfig configures a Cluster's admission controller.
type AdmissionConfig struct {
	Policy AdmissionPolicy
	// ChargeInstallCosts charges the hardware profile's GroupInstallCost
	// on member NICs' simulated timelines at install. Teardown cost is
	// always charged by Close — teardown is inherently a live-cluster
	// operation; only the install side has a free setup phase.
	ChargeInstallCosts bool
}

func (a AdmissionConfig) internal() comm.AdmissionConfig {
	return comm.AdmissionConfig{
		Policy:           comm.AdmitPolicy(a.Policy),
		ChargeSetupCosts: a.ChargeInstallCosts,
	}
}

// NewCluster builds a simulated cluster from cfg (Nodes, Interconnect,
// LossRate, Faults, Admission, Seed). The Scheme and Algorithm fields
// set the default for groups created on it. Under cfg.Partitions > 1
// it also builds the replica shards that partitioned workloads run on.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cc, err := newCommCluster(cfg, 0)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, c: cc}
	for s := 1; s < cfg.Partitions; s++ {
		rc, err := newCommCluster(cfg, s)
		if err != nil {
			return nil, err
		}
		c.replicas = append(c.replicas, rc)
	}
	return c, nil
}

// newCommCluster builds one simulated cluster backend — engine, NIC
// backend, comm layer, admission controller and trace scope — from cfg.
// shard is the replica index under partitioned workload execution;
// shard 0 is the primary and keeps the historical trace-scope name, so
// single-partition traces are unchanged.
func newCommCluster(cfg Config, shard int) (*comm.Cluster, error) {
	eng := sim.NewEngine()
	var cc *comm.Cluster
	switch cfg.Interconnect {
	case MyrinetLANai91, MyrinetLANaiXP:
		var loss netsim.LossModel
		if cfg.LossRate > 0 {
			loss = &netsim.RandomLoss{Rate: cfg.LossRate, RNG: sim.NewRNG(cfg.Seed + 1)}
		}
		cl := myrinet.NewCluster(eng, myrinetProfile(cfg.Interconnect), cfg.Nodes, loss)
		applyMyrinetFaults(cfg, cl)
		cc = comm.OverMyrinet(cl)
	case QuadricsElan3:
		cl := elan.NewCluster(eng, hwprofile.Elan3Cluster(), cfg.Nodes)
		if plan := compileFaults(cfg.Faults, cfg.Seed, cl.Prof.Net.BandwidthMBps); plan != nil {
			cl.SetFaults(plan)
		}
		cc = comm.OverElan(cl)
	default:
		return nil, fmt.Errorf("nicbarrier: unknown interconnect %d", int(cfg.Interconnect))
	}
	cc.SetAdmission(cfg.Admission.internal())
	if cfg.Trace != nil {
		name := fmt.Sprintf("%v %dn %v", cfg.Interconnect, cfg.Nodes, cfg.Scheme)
		if shard > 0 {
			name = fmt.Sprintf("%s/shard%d", name, shard)
		}
		sc := cfg.Trace.newScope(name)
		eng.SetObserver(sc)
		cc.SetTracer(sc)
	}
	return cc, nil
}

// workloadClusters is the shard list partitioned workloads run over:
// the primary plus the Partitions-1 replicas.
func (c *Cluster) workloadClusters() []*comm.Cluster {
	if len(c.replicas) == 0 {
		return []*comm.Cluster{c.c}
	}
	return append([]*comm.Cluster{c.c}, c.replicas...)
}

// Group is one communicator on a shared Cluster: a node subset with its
// own NIC group-queue slot, bit-vector records and sequence space per
// collective shape it runs. The first Barrier/Broadcast/Allreduce call
// claims the slot; repeated calls reuse it (the operation sequence
// continues, as the protocol's long-lived group queues do).
type Group struct {
	c       *Cluster
	members []int
	closed  bool

	barrierG *comm.Group
	bcastG   map[[2]int]*comm.Group
	reduceG  map[ReduceOperator]*comm.Group
}

// NewGroup declares a communicator over the given node IDs (rank
// order). NIC resources are claimed lazily by the first collective run
// on it, so declaring a group is free; running one fails cleanly when a
// member NIC's group-queue slots are exhausted.
func (c *Cluster) NewGroup(members []int) (*Group, error) {
	if len(members) < 1 {
		return nil, fmt.Errorf("nicbarrier: empty group")
	}
	seen := make(map[int]bool, len(members))
	for _, id := range members {
		if id < 0 || id >= c.cfg.Nodes {
			return nil, fmt.Errorf("nicbarrier: member node %d outside cluster of %d", id, c.cfg.Nodes)
		}
		if seen[id] {
			return nil, fmt.Errorf("nicbarrier: member node %d repeated", id)
		}
		seen[id] = true
	}
	return &Group{c: c, members: append([]int(nil), members...)}, nil
}

// Size reports the number of ranks in the group.
func (g *Group) Size() int { return len(g.members) }

// Close tears the group down, releasing every NIC group-queue slot its
// collective shapes claimed (one per distinct barrier, broadcast tree
// and allreduce operator it ran) back to the cluster — the teardown
// cost charged on the member NICs. Runs in flight drain first; under
// the queueing admission policy the freed slots immediately serve
// deferred installs. Closing an unused or already-closed group is a
// no-op. The group cannot run collectives afterwards.
func (g *Group) Close() error {
	if g.barrierG != nil {
		if err := g.barrierG.Close(); err != nil {
			return err
		}
		g.barrierG = nil
	}
	for key, cg := range g.bcastG {
		if err := cg.Close(); err != nil {
			return err
		}
		delete(g.bcastG, key)
	}
	for op, cg := range g.reduceG {
		if err := cg.Close(); err != nil {
			return err
		}
		delete(g.reduceG, op)
	}
	g.closed = true
	return nil
}

// schemes maps the public scheme to the backend selector.
func (c *Cluster) commSchemes() (myrinet.Scheme, elan.Scheme, error) {
	quadrics := c.cfg.Interconnect == QuadricsElan3
	switch c.cfg.Scheme {
	case HostBased:
		return myrinet.SchemeHost, elan.SchemeGsync, nil
	case NICDirect:
		return myrinet.SchemeDirect, 0, nil
	case NICCollective:
		return myrinet.SchemeCollective, elan.SchemeChained, nil
	case HardwareBroadcast:
		if quadrics {
			return 0, elan.SchemeHW, nil
		}
	}
	return 0, 0, fmt.Errorf("nicbarrier: scheme %v unsupported on %v", c.cfg.Scheme, c.cfg.Interconnect)
}

// Barrier runs warmup+iters consecutive barriers on this group, using
// the cluster Config's Scheme and Algorithm, and returns latency
// statistics over the measured iterations. Other groups on the cluster
// are untouched and may run their own operations concurrently via
// MeasureWorkload-style driving.
func (g *Group) Barrier(warmup, iters int) (Result, error) {
	if g.closed {
		return Result{}, fmt.Errorf("nicbarrier: group is closed")
	}
	if err := checkLoop(warmup, iters); err != nil {
		return Result{}, err
	}
	if g.barrierG == nil {
		ms, es, err := g.c.commSchemes()
		if err != nil {
			return Result{}, err
		}
		alg := g.c.cfg.Algorithm.internal()
		if g.c.cfg.Interconnect == QuadricsElan3 && g.c.cfg.Scheme == HostBased {
			alg = barrier.GatherBroadcast
		}
		cg, err := g.c.c.NewGroup(comm.GroupConfig{
			Members:       g.members,
			Kind:          comm.OpBarrier,
			Algorithm:     alg,
			Options:       barrier.Options{TreeDegree: g.c.cfg.TreeDegree},
			MyrinetScheme: ms,
			ElanScheme:    es,
		})
		if err != nil {
			return Result{}, err
		}
		g.barrierG = cg
	}
	if err := runnable(g.barrierG); err != nil {
		return Result{}, err
	}
	return g.c.measure(g.barrierG, warmup, iters), nil
}

// Broadcast runs warmup+iters NIC-based broadcasts from root down a
// degree-ary tree (Myrinet clusters only).
func (g *Group) Broadcast(root, degree, warmup, iters int) (Result, error) {
	if g.closed {
		return Result{}, fmt.Errorf("nicbarrier: group is closed")
	}
	if err := checkLoop(warmup, iters); err != nil {
		return Result{}, err
	}
	if g.c.cfg.Interconnect == QuadricsElan3 {
		return Result{}, fmt.Errorf("nicbarrier: NIC-based broadcast is implemented on Myrinet")
	}
	if root < 0 || root >= len(g.members) {
		return Result{}, fmt.Errorf("nicbarrier: root %d outside group of %d", root, len(g.members))
	}
	if degree == 0 {
		degree = 4
	}
	key := [2]int{root, degree}
	if g.bcastG == nil {
		g.bcastG = make(map[[2]int]*comm.Group)
	}
	cg := g.bcastG[key]
	if cg == nil {
		var err error
		cg, err = g.c.c.NewGroup(comm.GroupConfig{
			Members: g.members,
			Kind:    comm.OpBroadcast,
			Root:    root,
			Degree:  degree,
		})
		if err != nil {
			return Result{}, err
		}
		g.bcastG[key] = cg
	}
	if err := runnable(cg); err != nil {
		return Result{}, err
	}
	return g.c.measure(cg, warmup, iters), nil
}

// allreduceContrib is the deterministic contribution the library's
// allreduce measurements feed in (and self-check against).
func allreduceContrib(rank, iter int) int64 { return int64(rank*131 + iter*17 - 64) }

// Allreduce runs warmup+iters NIC-based single-word allreduces with the
// given operator (Myrinet clusters only), self-checking every
// iteration's result on every rank against the reference reduction.
func (g *Group) Allreduce(op ReduceOperator, warmup, iters int) (Result, error) {
	if g.closed {
		return Result{}, fmt.Errorf("nicbarrier: group is closed")
	}
	if err := checkLoop(warmup, iters); err != nil {
		return Result{}, err
	}
	if g.c.cfg.Interconnect == QuadricsElan3 {
		return Result{}, fmt.Errorf("nicbarrier: NIC-based allreduce is implemented on Myrinet")
	}
	if g.reduceG == nil {
		g.reduceG = make(map[ReduceOperator]*comm.Group)
	}
	cg := g.reduceG[op]
	if cg == nil {
		var err error
		cg, err = g.c.c.NewGroup(comm.GroupConfig{
			Members:   g.members,
			Kind:      comm.OpAllreduce,
			Algorithm: g.c.cfg.Algorithm.internal(),
			Options:   barrier.Options{TreeDegree: g.c.cfg.TreeDegree},
			Reduce:    op.internal(),
			Contrib:   allreduceContrib,
		})
		if err != nil {
			return Result{}, err
		}
		g.reduceG[op] = cg
	}
	if err := runnable(cg); err != nil {
		return Result{}, err
	}
	res := g.c.measure(cg, warmup, iters)
	for iter, row := range cg.Results() {
		want := allreduceContrib(0, iter)
		for r := 1; r < len(g.members); r++ {
			want = op.internal().Combine(want, allreduceContrib(r, iter))
		}
		for rank, got := range row {
			if got != want {
				return Result{}, fmt.Errorf(
					"nicbarrier: allreduce iteration %d rank %d: got %d, want %d", iter, rank, got, want)
			}
		}
	}
	return res, nil
}

func checkLoop(warmup, iters int) error {
	if warmup < 0 || iters < 1 {
		return fmt.Errorf("nicbarrier: warmup %d / iters %d", warmup, iters)
	}
	return nil
}

// runnable rejects exclusive runs on a group whose install is still
// queued behind full NICs: an exclusive measurement loop never closes
// other groups, so the install would wait forever.
func runnable(cg *comm.Group) error {
	if !cg.Installed() {
		return fmt.Errorf("nicbarrier: group install is queued awaiting free NIC slots; close another group first")
	}
	return nil
}

// measure drives one comm group exclusively for warmup+iters operations
// and assembles a Result from counter deltas, so repeated measurements
// on a shared cluster stay independent. On a fresh cluster the deltas
// equal the absolutes, which keeps the one-shot Measure* wrappers
// bit-identical to their historical behavior.
//
// A group whose install is still queued (AdmitQueue on a full NIC)
// cannot be driven exclusively — nothing in an exclusive run will free
// the slots it waits for — so callers error out before reaching here
// (see runnable).
func (c *Cluster) measure(cg *comm.Group, warmup, iters int) Result {
	c0 := c.counters()
	t0 := c.c.Eng.Now()
	cg.Reset()
	doneAt := cg.Run(warmup + iters)
	c.c.Eng.Run() // drain trailing ACKs and events for accurate counters
	if t0 != 0 {
		shifted := make([]sim.Time, len(doneAt))
		for i, at := range doneAt {
			shifted[i] = sim.Time(0).Add(at.Sub(t0))
		}
		doneAt = shifted
	}
	st := harness.LatencyStats(doneAt, warmup)
	c1 := c.counters()
	dropped := c1.dropped - c0.dropped
	midRoute := c1.hopDropped - c0.hopDropped
	return Result{
		MeanMicros: st.MeanUS, MinMicros: st.MinUS, MaxMicros: st.MaxUS,
		StdMicros: st.StdUS, Iterations: st.Iterations,
		PacketsPerBarrier: float64(c1.sent-c0.sent) / float64(warmup+iters),
		Retransmissions:   c1.retrans - c0.retrans,
		DroppedPackets:    dropped,
		Drops: DropBreakdown{
			Injected: dropped - midRoute,
			MidRoute: midRoute,
			Rejected: c1.rejected - c0.rejected,
			Stale:    c1.stale - c0.stale,
		},
	}
}

// wireSnapshot is one moment's cluster-wide wire and recovery
// accounting; measure works on deltas between two of them.
type wireSnapshot struct {
	sent, dropped, hopDropped, rejected, retrans, stale uint64
}

// counters snapshots the cluster-wide wire and recovery accounting.
func (c *Cluster) counters() wireSnapshot {
	if my := c.c.My; my != nil {
		net := my.Net.Counters()
		nic := my.Stats()
		return wireSnapshot{
			sent: net.Sent, dropped: net.Dropped,
			hopDropped: net.HopDropped, rejected: net.Rejected,
			retrans: nic.Retransmits + nic.CollResent, stale: nic.StaleColl,
		}
	}
	net := c.c.El.Net.Counters()
	return wireSnapshot{
		sent: net.Sent, dropped: net.Dropped,
		hopDropped: net.HopDropped, rejected: net.Rejected,
		stale: c.c.El.Stats().StaleRDMAs,
	}
}
