package shard

import (
	"fmt"
	"sync"

	"nicbarrier/internal/sim"
)

// Runner drives one sim.Engine per shard through conservative
// lookahead windows. Each window [W, W+L) — L being the lookahead —
// runs every shard's engine concurrently on its own goroutine; the
// conservative invariant (no cross-shard message can be delivered
// inside the window it was sent in) means the shards cannot observe
// each other mid-window, so the parallelism is free of both data races
// and result races. At the window barrier the coordinator drains every
// inbound queue — fixing the batch of messages each shard sees at that
// barrier independently of goroutine timing — and then computes the
// next window start as the minimum over all shards of the next
// pending event or message time, so idle stretches of virtual time are
// skipped in one jump rather than stepped through L nanoseconds at a
// time.
//
// A Runner is not safe for concurrent use by multiple coordinators;
// Send is safe exactly where the model needs it to be: from shard
// goroutines during a window.
type Runner struct {
	look   sim.Duration
	winEnd sim.Time // end of the window currently (or last) executed
	shards []runnerShard

	windows   uint64
	delivered uint64
}

type runnerShard struct {
	eng     *sim.Engine
	deliver func(Msg)
	in      Queue
	seq     uint64 // per-source sequence; touched only by this shard's goroutine
	pending []Msg  // barrier-drained batch, reused across windows
}

// NewRunner builds a runner over one engine per shard. lookahead must
// be positive (use MinCrossLatency); deliver is invoked on the
// destination shard's goroutine at the start of a window, once per
// inbound message in (From, At, Seq) order, and must only touch that
// shard's state — typically it schedules a handler on engines[shard]
// at m.At.
func NewRunner(lookahead sim.Duration, engines []*sim.Engine, deliver func(shard int, m Msg)) *Runner {
	if lookahead <= 0 {
		panic(fmt.Sprintf("shard: non-positive lookahead %v", lookahead))
	}
	if len(engines) == 0 {
		panic("shard: runner with no shards")
	}
	r := &Runner{look: lookahead, shards: make([]runnerShard, len(engines))}
	for i, e := range engines {
		i := i
		r.shards[i] = runnerShard{eng: e, deliver: func(m Msg) { deliver(i, m) }}
	}
	return r
}

// Lookahead reports the window length the runner synchronizes on.
func (r *Runner) Lookahead() sim.Duration { return r.look }

// Windows reports how many lookahead windows have been executed.
func (r *Runner) Windows() uint64 { return r.windows }

// Delivered reports how many cross-shard messages have been handed to
// deliver callbacks.
func (r *Runner) Delivered() uint64 { return r.delivered }

// Send queues a cross-shard message from shard `from` to shard `to`,
// to take effect at virtual time `at` on the destination. It must be
// called from shard from's goroutine while a window is executing, and
// at must lie at or beyond the window's end — the conservative
// invariant. A violation panics: it means the claimed lookahead was
// larger than the model's true minimum cross-shard latency, which
// would silently corrupt causality if allowed through.
func (r *Runner) Send(from, to int, at sim.Time, node int, data any) {
	if at < r.winEnd {
		panic(fmt.Sprintf("shard: lookahead violation: %d→%d at %v inside window ending %v",
			from, to, at, r.winEnd))
	}
	sh := &r.shards[from]
	sh.seq++
	r.shards[to].in.Push(Msg{From: from, At: at, Seq: sh.seq, Node: node, Data: data})
}

// Run executes windows until no shard has pending events or messages,
// or until stop (checked at every barrier; nil means never) reports
// true. Each barrier: drain queues, pick the earliest next event or
// message time W across shards, run every shard to W+lookahead-1 in
// parallel, repeat.
func (r *Runner) Run(stop func() bool) {
	for {
		if stop != nil && stop() {
			return
		}
		// Barrier phase: no shard goroutine is running, so draining is
		// race-free and the batch each shard will see is fixed here —
		// exactly the messages sent in prior windows — rather than
		// depending on how far sibling goroutines had gotten.
		haveWork := false
		var next sim.Time
		for i := range r.shards {
			sh := &r.shards[i]
			sh.pending = sh.in.Drain(sh.pending)
			for _, m := range sh.pending {
				if !haveWork || m.At < next {
					haveWork, next = true, m.At
				}
			}
			if t, ok := sh.eng.NextAt(); ok && (!haveWork || t < next) {
				haveWork, next = true, t
			}
			r.delivered += uint64(len(sh.pending))
		}
		if !haveWork {
			return
		}
		end := next.Add(r.look)
		r.winEnd = end
		r.windows++

		var wg sync.WaitGroup
		wg.Add(len(r.shards))
		for i := range r.shards {
			sh := &r.shards[i]
			go func() {
				defer wg.Done()
				for _, m := range sh.pending {
					sh.deliver(m)
				}
				sh.pending = sh.pending[:0]
				// RunUntil is inclusive, so end-1 keeps the window
				// half-open: events at exactly `end` belong to the next
				// window.
				sh.eng.RunUntil(end - 1)
			}()
		}
		wg.Wait()
	}
}
