package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nicbarrier/internal/obs"
)

func bench(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunSingleFigure(t *testing.T) {
	code, out, errb := bench(t, "-fig", "packets")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"packets", "Collective", "Direct(ACKed)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTSVFormat(t *testing.T) {
	code, out, errb := bench(t, "-fig", "packets", "-format", "tsv")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.HasPrefix(out, "N\t") {
		t.Fatalf("tsv output %.40q", out)
	}
}

func TestList(t *testing.T) {
	code, out, _ := bench(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"fig5", "summary", "faults-jitter"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, _, errb := bench(t, "-fig", "packets", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	if code, _, _ := bench(t, "-fig", "packets", "-cpuprofile", filepath.Join(dir, "no", "dir", "x")); code == 0 {
		t.Error("unwritable cpuprofile path accepted")
	}
	if code, _, _ := bench(t, "-fig", "packets", "-memprofile", filepath.Join(dir, "no", "dir", "x")); code == 0 {
		t.Error("unwritable memprofile path exited 0")
	}
}

func TestBadFlags(t *testing.T) {
	if code, _, _ := bench(t, "-fig", "no-such-figure"); code == 0 {
		t.Error("unknown figure accepted")
	}
	if code, _, _ := bench(t, "-fig", "packets", "-format", "xml"); code == 0 {
		t.Error("unknown format accepted")
	}
	if code, _, _ := bench(t, "-fig", "packets", "-fidelity", "extreme"); code == 0 {
		t.Error("unknown fidelity accepted")
	}
	if code, _, _ := bench(t, "-no-such-flag"); code == 0 {
		t.Error("unknown flag accepted")
	}
	if code, _, _ := bench(t, "-h"); code != 0 {
		t.Error("-h did not exit 0")
	}
}

func TestTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, out, errb := bench(t, "-fig", "fig6", "-trace", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"latency decomposition", "barrier", "trace written"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateChromeTrace(data); err != nil || n == 0 {
		t.Fatalf("exported trace invalid (%d events): %v", n, err)
	}
}
