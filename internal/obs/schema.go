package obs

import (
	"encoding/json"
	"fmt"
)

// SnapshotSchemaVersion is the version stamped into every serialized
// SnapshotDoc. Bump it on any field change that is not
// backward-compatible; ValidateSnapshotJSON rejects other versions.
const SnapshotSchemaVersion = 1

// SnapshotDoc is the wire form of a metrics snapshot: what the metrics
// service's /snapshot endpoint serves and what cmd/tracecheck
// -snapshot validates. Epoch sums the per-scope publication epochs (0
// for a quiescent snapshot), so two docs from the same run are ordered
// by it; Tenants is the cross-scope tenant-merged view of Scopes (see
// Snapshot.MergeTenants).
type SnapshotDoc struct {
	SchemaVersion int             `json:"schemaVersion"`
	Epoch         uint64          `json:"epoch"`
	AtUS          float64         `json:"atUS"`
	Scopes        []ScopeSnapshot `json:"scopes"`
	Tenants       []GroupSnapshot `json:"tenants,omitempty"`
}

// NewSnapshotDoc wraps a snapshot in its versioned wire form, filling
// the doc-level epoch/time stamps from the scopes and attaching the
// tenant-merged view.
func NewSnapshotDoc(snap Snapshot) SnapshotDoc {
	doc := SnapshotDoc{
		SchemaVersion: SnapshotSchemaVersion,
		Scopes:        snap.Scopes,
		Tenants:       snap.MergeTenants(),
	}
	for _, sc := range snap.Scopes {
		doc.Epoch += sc.Epoch
		if sc.AtUS > doc.AtUS {
			doc.AtUS = sc.AtUS
		}
	}
	return doc
}

// ValidateSnapshotJSON parses data as a SnapshotDoc and checks its
// internal consistency: the schema version, that every group's
// drop-reason breakdown sums to its drop total, that histogram bin
// counts sum to the histogram count, that quantiles are ordered, and
// that the doc epoch equals the sum of the scope epochs. It returns
// the number of scopes on success.
func ValidateSnapshotJSON(data []byte) (int, error) {
	var doc SnapshotDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("snapshot: parse: %w", err)
	}
	if doc.SchemaVersion != SnapshotSchemaVersion {
		return 0, fmt.Errorf("snapshot: schema version %d, want %d",
			doc.SchemaVersion, SnapshotSchemaVersion)
	}
	var epochs uint64
	for si, sc := range doc.Scopes {
		if sc.Name == "" {
			return 0, fmt.Errorf("snapshot: scope %d: empty name", si)
		}
		epochs += sc.Epoch
		for _, g := range sc.Groups {
			where := fmt.Sprintf("scope %q group %d", sc.Name, g.Group)
			if err := validateGroup(where, g); err != nil {
				return 0, err
			}
		}
	}
	if doc.Epoch != epochs {
		return 0, fmt.Errorf("snapshot: doc epoch %d != scope epoch sum %d",
			doc.Epoch, epochs)
	}
	for _, g := range doc.Tenants {
		if g.Tenant < 0 {
			return 0, fmt.Errorf("snapshot: tenant row with unbound tenant (group %d)", g.Group)
		}
		if err := validateGroup(fmt.Sprintf("tenant %d", g.Tenant), g); err != nil {
			return 0, err
		}
	}
	return len(doc.Scopes), nil
}

func validateGroup(where string, g GroupSnapshot) error {
	if got := g.Drops.Sum(); got != g.Dropped {
		return fmt.Errorf("snapshot: %s: drop reasons sum to %d, dropped = %d",
			where, got, g.Dropped)
	}
	h := g.Latency
	var binned uint64
	for _, b := range h.Bins {
		if b.N == 0 {
			return fmt.Errorf("snapshot: %s: empty histogram bin at %dns", where, b.V)
		}
		binned += b.N
	}
	if binned != h.Count {
		return fmt.Errorf("snapshot: %s: histogram bins sum to %d, count = %d",
			where, binned, h.Count)
	}
	if h.Count > 0 {
		if h.P50US > h.P95US || h.P95US > h.P99US || h.P99US > h.MaxUS {
			return fmt.Errorf("snapshot: %s: quantiles out of order (p50=%g p95=%g p99=%g max=%g)",
				where, h.P50US, h.P95US, h.P99US, h.MaxUS)
		}
	}
	return nil
}
