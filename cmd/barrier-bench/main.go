// Command barrier-bench regenerates the paper's evaluation artifacts:
// Figures 5, 6, 7, 8(a), 8(b), the Section 8 headline summary, and the
// two ablations (direct-scheme comparison, packet halving).
//
// Usage:
//
//	barrier-bench -fig all                 # everything, quick loop
//	barrier-bench -fig fig6 -fidelity paper
//	barrier-bench -fig fig8a -format tsv   # plottable output
package main

import (
	"flag"
	"fmt"
	"os"

	"nicbarrier/internal/harness"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run: all, "+list())
	fidelity := flag.String("fidelity", "quick",
		"measurement loop: quick (small iteration counts) or paper (100 warmup + 10000 iterations)")
	format := flag.String("format", "table", "output format: table or tsv")
	seed := flag.Uint64("seed", 1, "seed for node permutations")
	serial := flag.Bool("serial", false, "disable the parallel sweep worker pool")
	flag.Parse()

	cfg := harness.Quick()
	switch *fidelity {
	case "quick":
	case "paper":
		cfg = harness.PaperFidelity()
	default:
		fatalf("unknown -fidelity %q (quick|paper)", *fidelity)
	}
	cfg.Seed = *seed
	cfg.Parallel = !*serial

	ids := []string{*fig}
	if *fig == "all" {
		ids = harness.Experiments()
	}
	for _, id := range ids {
		out, err := render(id, cfg, *format)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(out)
	}
}

func render(id string, cfg harness.Config, format string) (string, error) {
	if format == "table" {
		return harness.Run(id, cfg)
	}
	if format != "tsv" {
		return "", fmt.Errorf("unknown -format %q (table|tsv)", format)
	}
	switch id {
	case "fig5":
		return harness.Fig5(cfg).TSV(), nil
	case "fig6":
		return harness.Fig6(cfg).TSV(), nil
	case "fig7":
		return harness.Fig7(cfg).TSV(), nil
	case "fig8a":
		return harness.Fig8a(cfg).TSV(), nil
	case "fig8b":
		return harness.Fig8b(cfg).TSV(), nil
	case "ablation":
		return harness.Ablation(cfg).TSV(), nil
	case "packets":
		return harness.Packets(cfg).TSV(), nil
	case "skew":
		return harness.Skew(cfg).TSV(), nil
	case "faults":
		return harness.FaultLossSweep(cfg).TSV(), nil
	case "faults-burst":
		return harness.FaultBurstSweep(cfg).TSV(), nil
	case "faults-jitter":
		return harness.FaultJitterSweep(cfg).TSV(), nil
	case "summary":
		return harness.Summary(cfg).Render(), nil // no TSV form
	default:
		return "", fmt.Errorf("unknown experiment %q (have %s)", id, list())
	}
}

func list() string {
	s := ""
	for i, id := range harness.Experiments() {
		if i > 0 {
			s += ", "
		}
		s += id
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "barrier-bench: "+format+"\n", args...)
	os.Exit(1)
}
