package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	e.Run()
	if e.Now() != 0 {
		t.Fatalf("clock moved on empty run: %v", e.Now())
	}
	if e.Executed() != 0 {
		t.Fatalf("executed %d events on empty run", e.Executed())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30, func() { order = append(order, 3) })
	e.After(10, func() { order = append(order, 1) })
	e.After(20, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(50, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: pos %d got %d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested schedule fired at %v, want [10 15]", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	e.After(1, nil)
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	timer := e.After(10, func() { ran = true })
	if !timer.Cancel() {
		t.Fatal("first Cancel reported not pending")
	}
	if timer.Cancel() {
		t.Fatal("second Cancel reported pending")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event still ran")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after run", e.Pending())
	}
}

func TestTimerCancelNil(t *testing.T) {
	var timer *Timer
	if timer.Cancel() {
		t.Fatal("nil timer Cancel reported pending")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.After(Duration(i+1), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Duration{5, 10, 15, 20} {
		e.After(d, func() { fired = append(fired, e.Now()) })
	}
	drained := e.RunUntil(12)
	if drained {
		t.Fatal("RunUntil reported drained with events pending")
	}
	if e.Now() != 12 {
		t.Fatalf("clock %v after RunUntil(12)", e.Now())
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if !e.RunUntil(100) {
		t.Fatal("RunUntil(100) should drain")
	}
	if e.Now() != 100 {
		t.Fatalf("clock %v after drained RunUntil(100), want 100", e.Now())
	}
}

func TestEngineRunCondition(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.After(Duration(i), func() { count++ })
	}
	ok := e.RunCondition(func() bool { return count >= 4 })
	if !ok {
		t.Fatal("condition not reached")
	}
	if count != 4 {
		t.Fatalf("count = %d at condition, want 4", count)
	}
	// Draining without meeting an impossible condition reports false.
	if e.RunCondition(func() bool { return false }) {
		t.Fatal("impossible condition reported satisfied")
	}
	if count != 10 {
		t.Fatalf("count = %d after drain, want 10", count)
	}
}

func TestEngineRunConditionAlreadyTrue(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(1, func() { ran = true })
	if !e.RunCondition(func() bool { return true }) {
		t.Fatal("pre-satisfied condition reported false")
	}
	if ran {
		t.Fatal("event ran though condition held before stepping")
	}
}

// Property: for any set of non-negative delays, the engine fires events in
// non-decreasing time order and ends with the clock at the max delay.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		last := Time(-1)
		monotonic := true
		var maxd Duration
		for _, d := range delays {
			d := Duration(d)
			if d > maxd {
				maxd = d
			}
			e.After(d, func() {
				if e.Now() < last {
					monotonic = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return monotonic && e.Now() == Time(maxd) &&
			e.Executed() == uint64(len(delays))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	if Micros(5.6) != 5600 {
		t.Fatalf("Micros(5.6) = %d", Micros(5.6))
	}
	if d := Time(5600).Micros(); d != 5.6 {
		t.Fatalf("Time(5600).Micros() = %v", d)
	}
	if got := Time(1500).String(); got != "1.500us" {
		t.Fatalf("Time.String() = %q", got)
	}
	if got := Duration(250).String(); got != "0.250us" {
		t.Fatalf("Duration.String() = %q", got)
	}
	if got := Time(100).Add(50); got != 150 {
		t.Fatalf("Add = %v", got)
	}
	if got := Time(150).Sub(100); got != 50 {
		t.Fatalf("Sub = %v", got)
	}
}

func TestCycles(t *testing.T) {
	// 133 cycles at 133 MHz is exactly 1us.
	if got := Cycles(133, 133); got != 1000 {
		t.Fatalf("Cycles(133, 133MHz) = %v, want 1000ns", got)
	}
	// 225 cycles at 225 MHz is exactly 1us.
	if got := Cycles(225, 225); got != 1000 {
		t.Fatalf("Cycles(225, 225MHz) = %v, want 1000ns", got)
	}
	// The identical handler is ~1.69x slower on the slower NIC.
	slow := Cycles(650, 133)
	fast := Cycles(650, 225)
	ratio := float64(slow) / float64(fast)
	if ratio < 1.68 || ratio > 1.70 {
		t.Fatalf("clock scaling ratio = %v, want ~225/133", ratio)
	}
	defer func() {
		if recover() == nil {
			t.Error("Cycles with zero clock did not panic")
		}
	}()
	Cycles(1, 0)
}

func TestBytesAt(t *testing.T) {
	// 256 bytes at 256 MB/s is exactly 1us.
	if got := BytesAt(256, 256); got != 1000 {
		t.Fatalf("BytesAt(256, 256MB/s) = %v, want 1000ns", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("BytesAt with zero bandwidth did not panic")
		}
	}()
	BytesAt(1, 0)
}
