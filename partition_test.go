package nicbarrier

import (
	"testing"
)

// partitionWorkloadConfig is the shared-node multi-tenant shape the
// cross-shard determinism tests run: overlapping memberships, a mixed
// op stream (the allreduce tenants self-check every iteration's
// result), and closed-loop pacing with think time so the RNG draw
// order is exercised end to end.
func partitionWorkloadConfig(partitions int) (Config, WorkloadSpec) {
	cfg := Config{
		Interconnect: MyrinetLANaiXP,
		Nodes:        32,
		Scheme:       NICCollective,
		Algorithm:    Dissemination,
		Seed:         42,
		Partitions:   partitions,
	}
	spec := WorkloadSpec{
		Tenants: 12, OpsPerTenant: 10,
		GroupSizeMin: 3, GroupSizeMax: 6,
		Overlap:       true,
		BarrierWeight: 2, BroadcastWeight: 1, AllreduceWeight: 1,
		Arrival: ClosedLoop, MeanGapMicros: 5,
	}
	return cfg, spec
}

// TestWorkloadPartitionInvariants runs the same seeded workload at 1,
// 2 and 4 partitions and requires the partition-invariant fields to
// match exactly: every tenant keeps its membership size, operation
// kind and op count whatever the shard layout, total ops are
// conserved, and the allreduce self-checks (inside RunWorkload) pass
// at every partition count.
func TestWorkloadPartitionInvariants(t *testing.T) {
	type tenantKey struct {
		size int
		op   string
		ops  int
	}
	var base []tenantKey
	for _, parts := range []int{1, 2, 4} {
		cfg, spec := partitionWorkloadConfig(parts)
		res, err := MeasureWorkload(cfg, spec)
		if err != nil {
			t.Fatalf("partitions=%d: %v", parts, err)
		}
		if len(res.Tenants) != spec.Tenants {
			t.Fatalf("partitions=%d: %d tenant rows, want %d", parts, len(res.Tenants), spec.Tenants)
		}
		if want := spec.Tenants * spec.OpsPerTenant; res.TotalOps != want {
			t.Fatalf("partitions=%d: TotalOps %d, want %d", parts, res.TotalOps, want)
		}
		keys := make([]tenantKey, len(res.Tenants))
		for i, tr := range res.Tenants {
			if tr.Tenant != i {
				t.Fatalf("partitions=%d: tenant row %d reports index %d (merge order broken)",
					parts, i, tr.Tenant)
			}
			keys[i] = tenantKey{size: tr.GroupSize, op: tr.Operation, ops: tr.Ops}
		}
		if base == nil {
			base = keys
			continue
		}
		for i := range keys {
			if keys[i] != base[i] {
				t.Fatalf("partitions=%d: tenant %d is %+v, was %+v at 1 partition",
					parts, i, keys[i], base[i])
			}
		}
	}
}

// TestWorkloadPartitionedBitDeterminism runs the 4-partition workload
// twice and requires bit-identical results: the parallel shards and
// the merge must hide goroutine scheduling entirely.
func TestWorkloadPartitionedBitDeterminism(t *testing.T) {
	run := func() WorkloadResult {
		cfg, spec := partitionWorkloadConfig(4)
		res, err := MeasureWorkload(cfg, spec)
		if err != nil {
			t.Fatalf("MeasureWorkload: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalOps != b.TotalOps || a.MakespanMicros != b.MakespanMicros ||
		a.AggregateOpsPerSec != b.AggregateOpsPerSec || a.Fairness != b.Fairness ||
		a.Packets != b.Packets || a.DroppedPackets != b.DroppedPackets {
		t.Fatalf("aggregate results differ across runs:\n%+v\n%+v", a, b)
	}
	for i := range a.Tenants {
		if a.Tenants[i] != b.Tenants[i] {
			t.Fatalf("tenant %d differs across runs:\n%+v\n%+v", i, a.Tenants[i], b.Tenants[i])
		}
	}
}

// TestChurnPartitionInvariants runs the same seeded churn at 1, 2 and
// 4 partitions: every tenant completes its lifecycle at every
// partition count, and op totals are conserved. (Admission contention
// is shard-local, so queue statistics legitimately vary with the
// layout; completion does not.)
func TestChurnPartitionInvariants(t *testing.T) {
	spec := ChurnSpec{
		Tenants: 24, OpsPerTenant: 6,
		GroupSizeMin: 2, GroupSizeMax: 4,
		MeanArrivalGapMicros: 3,
		ReconfigureEvery:     3,
		Policy:               AdmitQueue,
		ChargeInstallCosts:   true,
	}
	for _, parts := range []int{1, 2, 4} {
		cfg := Config{
			Interconnect: MyrinetLANaiXP,
			Nodes:        16,
			Seed:         42,
			Partitions:   parts,
		}
		res, err := MeasureChurn(cfg, spec)
		if err != nil {
			t.Fatalf("partitions=%d: %v", parts, err)
		}
		if res.Completed != spec.Tenants {
			t.Fatalf("partitions=%d: %d of %d tenants completed", parts, res.Completed, spec.Tenants)
		}
		if want := spec.Tenants * spec.OpsPerTenant; res.TotalOps != want {
			t.Fatalf("partitions=%d: TotalOps %d, want %d", parts, res.TotalOps, want)
		}
	}
}

// TestChurnPartitionedBitDeterminism runs the 4-partition churn twice
// and requires identical results field for field.
func TestChurnPartitionedBitDeterminism(t *testing.T) {
	run := func() ChurnResult {
		cfg := Config{
			Interconnect: MyrinetLANaiXP,
			Nodes:        16,
			Seed:         7,
			Partitions:   4,
		}
		res, err := MeasureChurn(cfg, ChurnSpec{
			Tenants: 20, OpsPerTenant: 6,
			GroupSizeMin: 2, GroupSizeMax: 4,
			MeanArrivalGapMicros: 2,
			MeanThinkMicros:      10,
			Policy:               AdmitQueue,
			ChargeInstallCosts:   true,
		})
		if err != nil {
			t.Fatalf("MeasureChurn: %v", err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("churn results differ across runs:\n%+v\n%+v", a, b)
	}
}

// TestPartitionsSinglePartitionIdentical pins the bit-identity
// contract: Partitions 0 and 1 produce exactly the historical
// single-cluster result.
func TestPartitionsSinglePartitionIdentical(t *testing.T) {
	run := func(parts int) WorkloadResult {
		cfg, spec := partitionWorkloadConfig(parts)
		res, err := MeasureWorkload(cfg, spec)
		if err != nil {
			t.Fatalf("partitions=%d: %v", parts, err)
		}
		return res
	}
	a, b := run(0), run(1)
	if a.TotalOps != b.TotalOps || a.MakespanMicros != b.MakespanMicros ||
		a.Fairness != b.Fairness || a.Packets != b.Packets {
		t.Fatalf("Partitions 0 vs 1 diverge:\n%+v\n%+v", a, b)
	}
	for i := range a.Tenants {
		if a.Tenants[i] != b.Tenants[i] {
			t.Fatalf("tenant %d differs between Partitions 0 and 1", i)
		}
	}
}

// TestPartitionsValidation rejects a negative partition count.
func TestPartitionsValidation(t *testing.T) {
	_, err := NewCluster(Config{
		Interconnect: MyrinetLANaiXP, Nodes: 8, Partitions: -1,
	})
	if err == nil {
		t.Fatal("Partitions = -1 accepted")
	}
}
