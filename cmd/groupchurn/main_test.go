package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nicbarrier/internal/obs"
)

func gc(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListScenarios(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"queue-crunch", "reconfigure-heavy", "spread-placement", "quadrics-churn", "think-time-mix"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunQueueCrunch(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-scenario", "queue-crunch", "-tenants", "20", "-ops", "5"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "completed  20 tenants") {
		t.Errorf("unexpected completion line:\n%s", s)
	}
	if !strings.Contains(s, "installs") || !strings.Contains(s, "queued") {
		t.Errorf("missing lifecycle/admission lines:\n%s", s)
	}
}

func TestAllScenarios(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-all", "-tenants", "12", "-ops", "4"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if got := strings.Count(out.String(), "note:"); got != 5 {
		t.Errorf("ran %d scenarios, want 5:\n%s", got, out.String())
	}
}

func TestBadFlagsAndScenario(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-scenario", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("unknown scenario exit %d", code)
	}
	if code := realMain(nil, &out, &errb); code != 1 {
		t.Fatalf("no selection exit %d", code)
	}
	if code := realMain([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit %d", code)
	}
}

func TestTraceFlagAndSwapLatencies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, out, errb := gc(t, "-scenario", "reconfigure-heavy", "-trace", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"swap-lat", "pre", "post", "trace written"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateChromeTrace(data); err != nil || n == 0 {
		t.Fatalf("exported trace invalid (%d events): %v", n, err)
	}
}
