// Command docslint enforces the repository's documentation contract in
// CI. It fails when
//
//   - any exported top-level identifier (function, method on an exported
//     type, type, var or const) in the root nicbarrier package or in
//     internal/{sim,netsim,comm,obs} lacks a doc comment, or
//   - any of those packages lacks a package comment, or
//   - a relative link in README.md, ARCHITECTURE.md or ROADMAP.md points
//     at a file that does not exist.
//
// Usage:
//
//	go run ./cmd/docslint [-root dir]
//
// External links (http/https/mailto) and pure in-page anchors are not
// checked; fragments on relative links are stripped before the file
// check. The tool prints one line per violation and exits non-zero if
// any were found.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// docPackages are the packages whose exported surface must be fully
// documented: the public facade and the layers ARCHITECTURE.md leans on.
var docPackages = []string{".", "internal/sim", "internal/netsim", "internal/comm", "internal/obs"}

// linkFiles are the markdown documents whose relative links must resolve.
var linkFiles = []string{"README.md", "ARCHITECTURE.md", "ROADMAP.md"}

func main() {
	root := flag.String("root", ".", "repository root to lint")
	flag.Parse()

	var violations []string
	for _, pkg := range docPackages {
		violations = append(violations, lintPackage(filepath.Join(*root, pkg))...)
	}
	for _, f := range linkFiles {
		violations = append(violations, lintLinks(*root, f)...)
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("docslint: ok")
}

// lintPackage parses every non-test Go file in dir and reports exported
// top-level identifiers without doc comments, plus a missing package
// comment.
func lintPackage(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			out = append(out, lintFile(fset, f)...)
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
	}
	return out
}

// lintFile reports undocumented exported declarations in one file. A
// spec inside a grouped var/const/type block is covered by either its
// own doc comment or the block's.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				report(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if d.Doc != nil || s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), declWhat(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

func declWhat(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// exportedReceiver reports whether a declaration is part of the
// exported surface: free functions always are; methods only when their
// receiver's base type is exported.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// mdLink matches inline markdown links; the first group is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintLinks reports relative links in root/name that do not resolve to
// an existing file or directory. Targets are resolved relative to the
// markdown file's own directory, as renderers do.
func lintLinks(root, name string) []string {
	path := filepath.Join(root, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", name, err)}
	}
	var out []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				out = append(out, fmt.Sprintf("%s:%d: broken link %q", name, i+1, m[1]))
			}
		}
	}
	return out
}
