package harness

import (
	"fmt"

	"nicbarrier/internal/barrier"
	"nicbarrier/internal/elan"
	"nicbarrier/internal/hwprofile"
	"nicbarrier/internal/model"
	"nicbarrier/internal/myrinet"
	"nicbarrier/internal/sim"
)

// MeasureMyrinet runs one Myrinet data point: an n-rank barrier session
// on a clusterSize-node cluster with the given scheme and algorithm.
func MeasureMyrinet(cfg Config, prof hwprofile.MyrinetProfile, clusterSize, n int,
	scheme myrinet.Scheme, alg barrier.Algorithm) float64 {
	eng := sim.NewEngine()
	cl := myrinet.NewCluster(eng, prof, clusterSize, nil)
	if cfg.Trace != nil {
		sc := cfg.Trace.NewScope(fmt.Sprintf("myrinet %dn/%d %v %v", clusterSize, n, scheme, alg))
		eng.SetObserver(sc)
		cl.SetTracer(sc)
	}
	ids := permutedIDs(cfg, clusterSize, n, uint64(scheme)<<8|uint64(alg))
	s := myrinet.NewSession(cl, ids, scheme, alg, barrier.Options{})
	warmup, iters := cfg.itersFor(n)
	return s.MeanLatency(warmup, iters).Micros()
}

// MeasureElan runs one Quadrics data point.
func MeasureElan(cfg Config, clusterSize, n int, scheme elan.Scheme, alg barrier.Algorithm) float64 {
	eng := sim.NewEngine()
	cl := elan.NewCluster(eng, hwprofile.Elan3Cluster(), clusterSize)
	if cfg.Trace != nil {
		sc := cfg.Trace.NewScope(fmt.Sprintf("elan %dn/%d %v %v", clusterSize, n, scheme, alg))
		eng.SetObserver(sc)
		cl.SetTracer(sc)
	}
	ids := permutedIDs(cfg, clusterSize, n, 0x9000|uint64(scheme)<<8|uint64(alg))
	s := elan.NewSession(cl, ids, scheme, alg, barrier.Options{})
	warmup, iters := cfg.itersFor(n)
	return s.MeanLatency(warmup, iters).Micros()
}

func rangeInts(from, to int) []int {
	var out []int
	for n := from; n <= to; n++ {
		out = append(out, n)
	}
	return out
}

func powersOfTwo(from, to int) []int {
	var out []int
	for n := from; n <= to; n *= 2 {
		out = append(out, n)
	}
	return out
}

// Fig5 reproduces Fig. 5: NIC-based and host-based barriers, both
// algorithms, on the 16-node 700 MHz cluster with LANai 9.1 cards.
func Fig5(cfg Config) Figure {
	prof := hwprofile.LANai91Cluster()
	const size = 16
	ns := rangeInts(2, size)
	mk := func(scheme myrinet.Scheme, alg barrier.Algorithm) Measure {
		return func(n int) float64 {
			return MeasureMyrinet(cfg, prof, size, n, scheme, alg)
		}
	}
	return Figure{
		ID:     "fig5",
		Title:  "NIC-based vs host-based barrier, Myrinet LANai 9.1, 16-node 700MHz cluster",
		XLabel: "Number of Nodes",
		YLabel: "Latency",
		Series: []Series{
			sweep(cfg, "NIC-DS", ns, mk(myrinet.SchemeCollective, barrier.Dissemination)),
			sweep(cfg, "NIC-PE", ns, mk(myrinet.SchemeCollective, barrier.PairwiseExchange)),
			sweep(cfg, "Host-DS", ns, mk(myrinet.SchemeHost, barrier.Dissemination)),
			sweep(cfg, "Host-PE", ns, mk(myrinet.SchemeHost, barrier.PairwiseExchange)),
		},
		Notes: []string{"paper: 25.72us NIC-based at 16 nodes, 3.38x over host-based"},
	}
}

// Fig6 reproduces Fig. 6: the same comparison on the 8-node 2.4 GHz Xeon
// cluster with LANai-XP cards.
func Fig6(cfg Config) Figure {
	prof := hwprofile.LANaiXPCluster()
	const size = 8
	ns := rangeInts(2, size)
	mk := func(scheme myrinet.Scheme, alg barrier.Algorithm) Measure {
		return func(n int) float64 {
			return MeasureMyrinet(cfg, prof, size, n, scheme, alg)
		}
	}
	return Figure{
		ID:     "fig6",
		Title:  "NIC-based vs host-based barrier, Myrinet LANai-XP, 8-node 2.4GHz cluster",
		XLabel: "Number of Nodes",
		YLabel: "Latency",
		Series: []Series{
			sweep(cfg, "NIC-DS", ns, mk(myrinet.SchemeCollective, barrier.Dissemination)),
			sweep(cfg, "NIC-PE", ns, mk(myrinet.SchemeCollective, barrier.PairwiseExchange)),
			sweep(cfg, "Host-DS", ns, mk(myrinet.SchemeHost, barrier.Dissemination)),
			sweep(cfg, "Host-PE", ns, mk(myrinet.SchemeHost, barrier.PairwiseExchange)),
		},
		Notes: []string{"paper: 14.20us NIC-based at 8 nodes, 2.64x over host-based"},
	}
}

// Fig7 reproduces Fig. 7: barrier implementations over Quadrics/Elan3 on
// the 8-node 700 MHz cluster.
func Fig7(cfg Config) Figure {
	const size = 8
	ns := rangeInts(2, size)
	mkChained := func(alg barrier.Algorithm) Measure {
		return func(n int) float64 { return MeasureElan(cfg, size, n, elan.SchemeChained, alg) }
	}
	return Figure{
		ID:     "fig7",
		Title:  "Barrier implementations over Quadrics/Elan3, 8-node 700MHz cluster",
		XLabel: "Number of Nodes",
		YLabel: "Latency",
		Series: []Series{
			sweep(cfg, "NIC-Barrier-DS", ns, mkChained(barrier.Dissemination)),
			sweep(cfg, "NIC-Barrier-PE", ns, mkChained(barrier.PairwiseExchange)),
			sweep(cfg, "Elan-Barrier", ns, func(n int) float64 {
				return MeasureElan(cfg, size, n, elan.SchemeGsync, barrier.GatherBroadcast)
			}),
			sweep(cfg, "Elan-HW-Barrier", ns, func(n int) float64 {
				return MeasureElan(cfg, size, n, elan.SchemeHW, barrier.Dissemination)
			}),
		},
		Notes: []string{
			"paper: 5.60us NIC-based at 8 nodes, 2.48x over elan_gsync; elan_hgsync 4.20us",
			"divergence: PE is not faster than DS at non-power-of-two sizes here; see EXPERIMENTS.md",
		},
	}
}

// fig8 builds one panel of Fig. 8: measured dissemination NIC barrier
// latency vs the analytical model, 2..1024 nodes.
func fig8(cfg Config, id, title string, paper model.Model, measure Measure) Figure {
	ns := powersOfTwo(2, 1024)
	measured := sweep(cfg, "Measured", ns, measure)

	xs := make([]int, len(measured.Points))
	ys := make([]float64, len(measured.Points))
	for i, p := range measured.Points {
		xs[i], ys[i] = p.N, p.LatencyUS
	}
	fitted, err := model.Fit(xs, ys)
	if err != nil {
		panic(fmt.Sprintf("harness: model fit failed: %v", err))
	}
	modelSeries := Series{Name: "Model"}
	paperSeries := Series{Name: "Paper-Model"}
	for _, n := range ns {
		modelSeries.Points = append(modelSeries.Points, Point{N: n, LatencyUS: fitted.Predict(n)})
		paperSeries.Points = append(paperSeries.Points, Point{N: n, LatencyUS: paper.Predict(n)})
	}
	// Fit quality over the extrapolation range (n >= 8); like the
	// paper's model, the straight line misses at n=2 by construction
	// (their model predicts 1.25us there against ~2us measured).
	var bigXs []int
	var bigYs []float64
	for i, n := range xs {
		if n >= 8 {
			bigXs = append(bigXs, n)
			bigYs = append(bigYs, ys[i])
		}
	}
	return Figure{
		ID:     id,
		Title:  title,
		XLabel: "Number of Nodes",
		YLabel: "Latency",
		Series: []Series{modelSeries, measured, paperSeries},
		Notes: []string{
			"fitted: " + fitted.String(),
			"paper:  " + paper.String(),
			fmt.Sprintf("fit max relative error vs measured (n>=8): %.1f%%",
				fitted.MaxRelativeError(bigXs, bigYs)*100),
		},
	}
}

// Fig8a reproduces Fig. 8(a): Quadrics barrier scalability model.
func Fig8a(cfg Config) Figure {
	return fig8(cfg, "fig8a", "Barrier scalability over 700MHz Quadrics-Elan3 cluster",
		model.PaperQuadrics(), func(n int) float64 {
			return MeasureElan(cfg, n, n, elan.SchemeChained, barrier.Dissemination)
		})
}

// Fig8b reproduces Fig. 8(b): Myrinet barrier scalability model.
func Fig8b(cfg Config) Figure {
	prof := hwprofile.LANaiXPCluster()
	return fig8(cfg, "fig8b", "Barrier scalability over 2.4GHz Myrinet LANai-XP cluster",
		model.PaperMyrinetXP(), func(n int) float64 {
			return MeasureMyrinet(cfg, prof, n, n, myrinet.SchemeCollective, barrier.Dissemination)
		})
}

// Ablation reproduces the paper's Section 8.1 argument against the
// direct scheme: collective-protocol vs direct vs host-based barriers on
// both Myrinet clusters.
func Ablation(cfg Config) Figure {
	xp := hwprofile.LANaiXPCluster()
	l9 := hwprofile.LANai91Cluster()
	nsXP := rangeInts(2, 8)
	ns91 := rangeInts(2, 16)
	mk := func(prof hwprofile.MyrinetProfile, size int, scheme myrinet.Scheme) Measure {
		return func(n int) float64 {
			return MeasureMyrinet(cfg, prof, size, n, scheme, barrier.Dissemination)
		}
	}
	return Figure{
		ID:     "ablation",
		Title:  "Collective protocol vs direct scheme vs host-based (dissemination)",
		XLabel: "Number of Nodes",
		YLabel: "Latency",
		Series: []Series{
			sweep(cfg, "XP-Collective", nsXP, mk(xp, 8, myrinet.SchemeCollective)),
			sweep(cfg, "XP-Direct", nsXP, mk(xp, 8, myrinet.SchemeDirect)),
			sweep(cfg, "XP-Host", nsXP, mk(xp, 8, myrinet.SchemeHost)),
			sweep(cfg, "9.1-Collective", ns91, mk(l9, 16, myrinet.SchemeCollective)),
			sweep(cfg, "9.1-Direct", ns91, mk(l9, 16, myrinet.SchemeDirect)),
			sweep(cfg, "9.1-Host", ns91, mk(l9, 16, myrinet.SchemeHost)),
		},
		Notes: []string{
			"paper (on older LANai 7.2/GM-1.2.3 hardware): direct scheme improved 1.86x over host;",
			"the collective protocol improves 2.64x (XP) and 3.38x (9.1) — the gap is the paper's thesis",
		},
	}
}

// Packets reproduces the Section 6.3 packet accounting: wire packets per
// barrier for the collective protocol (no ACKs) vs the direct scheme
// (data + ACK per message).
func Packets(cfg Config) Figure {
	prof := hwprofile.LANaiXPCluster()
	const size = 16
	count := func(scheme myrinet.Scheme) Measure {
		return func(n int) float64 {
			eng := sim.NewEngine()
			cl := myrinet.NewCluster(eng, prof, size, nil)
			ids := permutedIDs(cfg, size, n, 0x7000|uint64(scheme))
			s := myrinet.NewSession(cl, ids, scheme, barrier.Dissemination, barrier.Options{})
			const iters = 10
			s.Run(iters)
			eng.Run() // drain trailing ACKs
			c := cl.Net.Counters()
			pkts := c.ByKind["barrier-coll"] + c.ByKind["barrier-direct"] +
				c.ByKind["ack"] + c.ByKind["barrier-nack"]
			return float64(pkts) / iters
		}
	}
	ns := []int{2, 4, 8, 16}
	return Figure{
		ID:     "packets",
		Title:  "Wire packets per barrier: receiver-driven retransmission halves traffic",
		XLabel: "Number of Nodes",
		YLabel: "Packets/barrier",
		Unit:   "pkts",
		Series: []Series{
			sweep(cfg, "Collective", ns, count(myrinet.SchemeCollective)),
			sweep(cfg, "Direct(ACKed)", ns, count(myrinet.SchemeDirect)),
		},
		Notes: []string{"paper Section 6.3: eliminating ACKs reduces the number of packets by half"},
	}
}

// Skew quantifies the paper's synchronization argument against the
// hardware barrier: one barrier is entered with a linear per-rank stagger
// (rank r enters at r/(n-1) of the skew span); the reported latency is
// from the last entry to global completion. The NIC-based barrier buffers
// early notifications in its bit vector and stays flat; the hardware
// test-and-set retries once the skew exceeds its sync window.
func Skew(cfg Config) Figure {
	const size = 8
	spansUS := []int{0, 10, 20, 40, 80, 160, 320}
	run := func(scheme elan.Scheme) Measure {
		return func(spanUS int) float64 {
			eng := sim.NewEngine()
			cl := elan.NewCluster(eng, hwprofile.Elan3Cluster(), size)
			ids := permutedIDs(cfg, size, size, 0x5e00|uint64(scheme))
			s := elan.NewSession(cl, ids, scheme, barrier.Dissemination, barrier.Options{})
			skew := make([]sim.Duration, size)
			for r := range skew {
				skew[r] = sim.Micros(float64(spanUS) * float64(r) / float64(size-1))
			}
			return s.RunSkewed(skew).Micros()
		}
	}
	return Figure{
		ID:     "skew",
		Title:  "Barrier cost after the last process arrives, under entry skew (Quadrics, 8 nodes)",
		XLabel: "Entry skew span (us)",
		YLabel: "Latency after last entry",
		Series: []Series{
			sweep(cfg, "NIC-Barrier-DS", spansUS, run(elan.SchemeChained)),
			sweep(cfg, "Elan-HW-Barrier", spansUS, run(elan.SchemeHW)),
			sweep(cfg, "Elan-Barrier", spansUS, run(elan.SchemeGsync)),
		},
		Notes: []string{
			"paper Section 8.2: the hardware barrier 'requires that the involving processes be",
			"well synchronized... hardly the case for parallel programs over large size clusters'",
		},
	}
}

// init registers the paper's experiments as named scenarios, in the
// order the evaluation presents them. Additional workloads register
// themselves the same way (see faults.go) and automatically appear in
// the CLI listing and in benchgate reports.
func init() {
	RegisterScenario(Scenario{ID: "fig5",
		Title: "Fig. 5: NIC vs host barrier, Myrinet LANai 9.1, 16 nodes", Figure: Fig5})
	RegisterScenario(Scenario{ID: "fig6",
		Title: "Fig. 6: NIC vs host barrier, Myrinet LANai-XP, 8 nodes", Figure: Fig6})
	RegisterScenario(Scenario{ID: "fig7",
		Title: "Fig. 7: barrier implementations over Quadrics/Elan3", Figure: Fig7})
	RegisterScenario(Scenario{ID: "fig8a",
		Title: "Fig. 8(a): Quadrics barrier scalability model to 1024 nodes", Figure: Fig8a})
	RegisterScenario(Scenario{ID: "fig8b",
		Title: "Fig. 8(b): Myrinet barrier scalability model to 1024 nodes", Figure: Fig8b})
	RegisterScenario(Scenario{ID: "summary",
		Title: "Section 8 headline numbers, paper vs this reproduction", Table: Summary})
	RegisterScenario(Scenario{ID: "ablation",
		Title: "Ablation: collective protocol vs direct scheme vs host-based", Figure: Ablation})
	RegisterScenario(Scenario{ID: "packets",
		Title: "Section 6.3 packet accounting: receiver-driven retransmission halves traffic", Figure: Packets})
	RegisterScenario(Scenario{ID: "skew",
		Title: "Section 8.2: barrier cost under process entry skew", Figure: Skew})
	registerFaultScenarios()
	registerRecoveryScenarios()
	registerTenantScenarios()
	registerLifecycleScenarios()
	registerPartitionScenarios()
}
